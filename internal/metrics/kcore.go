package metrics

import "snap/internal/graph"

// KCore computes the core number of every vertex (the largest k such
// that the vertex belongs to a maximal subgraph of minimum degree k)
// with the linear-time peeling algorithm of Batagelj & Zaveršnik.
// Core decomposition is a standard SNA preprocessing step alongside
// the rich-club coefficient: the innermost cores locate the densely
// connected nucleus of a small-world network.
func KCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	order := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)   // position of each vertex in order
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := int32(0); int(v) < n; v++ {
		p := cursor[deg[v]]
		order[p] = v
		pos[v] = p
		cursor[deg[v]]++
	}
	// binStart[d] = index of the first vertex with degree >= d.
	for i := int32(0); int(i) < n; i++ {
		v := order[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] <= deg[v] {
				continue
			}
			// Move u to the front of its degree bin, then shrink it.
			du := deg[u]
			pu := pos[u]
			pw := binStart[du]
			w := order[pw]
			if u != w {
				order[pu], order[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			binStart[du]++
			deg[u]--
		}
	}
	return core
}

// Degeneracy reports the maximum core number (the graph degeneracy).
func Degeneracy(g *graph.Graph) int {
	var mx int32
	for _, c := range KCore(g) {
		if c > mx {
			mx = c
		}
	}
	return int(mx)
}

// CoreSizes returns the number of vertices with core number >= k for
// each k (the cumulative core-size profile).
func CoreSizes(g *graph.Graph) []int {
	core := KCore(g)
	var mx int32
	for _, c := range core {
		if c > mx {
			mx = c
		}
	}
	out := make([]int, mx+1)
	for _, c := range core {
		out[c]++
	}
	// Cumulate from the top: out[k] = #vertices in the k-core.
	for k := int(mx) - 1; k >= 0; k-- {
		out[k] += out[k+1]
	}
	return out
}
