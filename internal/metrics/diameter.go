package metrics

import (
	"snap/internal/bfs"
	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/sketch"
)

// DiameterOptions configures DiameterWithOptions.
type DiameterOptions struct {
	// Approx routes to the HyperANF sketch tier, returning the
	// interpolated effective diameter at Quantile instead of the exact
	// iFUB diameter. On large small-world graphs the sketch needs one
	// union sweep per distance level while iFUB may re-run many full
	// traversals — see EXPERIMENTS.md for measured ratios.
	Approx bool
	// Quantile is the effective-diameter quantile under Approx
	// (0 means 0.9). Quantile 1.0 approaches the true diameter of the
	// reachable-pair relation.
	Quantile float64
	// Registers is the per-vertex HLL register count under Approx
	// (0 means 64).
	Registers int
	// Seed drives the sketch hash; 0 means the documented default.
	Seed int64
	// Workers bounds parallelism of the sketch sweeps; the exact path
	// is serial by design (its per-level work is too fine-grained to
	// win from goroutine barriers).
	Workers int
}

// DiameterWithOptions computes the graph diameter, exactly (iFUB, the
// default) or approximately (HyperANF effective diameter at the given
// quantile). The exact tier returns an integer-valued float64; the
// approximate tier interpolates between sweep levels.
func DiameterWithOptions(g *graph.Graph, opt DiameterOptions) float64 {
	if !opt.Approx {
		return float64(Diameter(g))
	}
	r := sketch.ANF(g, sketch.ANFOptions{
		Registers: opt.Registers,
		Seed:      opt.Seed,
		Workers:   opt.Workers,
		Quantile:  opt.Quantile,
	})
	return r.EffectiveDiameter
}

// Diameter computes the exact diameter of the largest connected
// component using the iFUB scheme (iterative fringe upper bound):
// a double-sweep lower bound from a BFS-deep vertex, then BFS from
// the deepest fringe layers of a central root until the upper bound
// meets the best eccentricity found. On small-world graphs this
// terminates after a handful of traversals instead of n.
//
// All traversals share one epoch-stamped frontier engine in serial
// direction-optimizing mode (bottom-up sweeps through the dense middle
// levels of small-world graphs, plain top-down elsewhere), so the
// whole computation performs O(1) heap allocation regardless of how
// many fringe vertices iFUB has to scan, and each eccentricity probe
// reads MaxDist in O(1) from the traversal order instead of scanning
// an O(n) distance vector.
func Diameter(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	// Start anywhere in the largest component: pick the max-degree
	// vertex (guaranteed non-isolated when edges exist).
	start := int32(0)
	for v := int32(1); int(v) < n; v++ {
		if g.Degree(v) > g.Degree(start) {
			start = v
		}
	}
	if g.Degree(start) == 0 {
		return 0
	}
	ws := bfs.AcquireWorkspace(n)
	defer bfs.ReleaseWorkspace(ws)
	// iFUB only consumes distances and any shortest-path tree, so each
	// sweep may switch directions freely; one worker keeps the
	// per-level barrier free of goroutine overhead.
	opt := frontier.Options{Workers: 1, MaxDepth: -1, Alpha: frontier.DefaultAlpha}
	// Double sweep: farthest from start, then farthest from there.
	ws.RunOptions(g, start, opt)
	a := farthest(ws)
	ws.RunOptions(g, a, opt)
	b := farthest(ws)
	lower := int(ws.Dist(b))
	// Root the iFUB search at the midpoint of the a-b path (walked now,
	// before the workspace is reused for the next traversal).
	mid := b
	for hop := 0; hop < lower/2; hop++ {
		mid = ws.Parent(mid)
	}
	ws.RunOptions(g, mid, opt)
	ecc := ws.NumLevels() - 1
	// Layers of the mid-rooted BFS tree: the engine maintains
	// per-level windows of its visitation order, copied out (two
	// allocations) before the workspace is reused below.
	order := append([]int32(nil), ws.Order()...)
	bounds := make([]int, ws.NumLevels()+1)
	for d := 0; d < ws.NumLevels(); d++ {
		bounds[d+1] = bounds[d] + len(ws.Level(int32(d)))
	}
	best := lower
	upper := 2 * ecc
	for depth := ecc; depth > 0 && upper > best; depth-- {
		for _, v := range order[bounds[depth]:bounds[depth+1]] {
			ws.RunOptions(g, v, opt)
			if e := int(ws.MaxDist()); e > best {
				best = e
			}
		}
		// Any vertex at depth <= d has eccentricity <= 2d; once the
		// remaining depth cannot beat best, stop.
		upper = 2 * (depth - 1)
	}
	return best
}

// farthest returns the reached vertex with the largest distance in the
// workspace's latest traversal, breaking ties toward the smaller
// vertex id (matching the historical dense-scan selection; the scan
// order of the traversal does not affect the winner).
func farthest(ws *bfs.Workspace) int32 {
	best := int32(0)
	bd := int32(-1)
	for _, v := range ws.Order() {
		if d := ws.Dist(v); d > bd || (d == bd && v < best) {
			bd, best = d, v
		}
	}
	return best
}
