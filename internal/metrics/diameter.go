package metrics

import (
	"snap/internal/bfs"
	"snap/internal/graph"
)

// Diameter computes the exact diameter of the largest connected
// component using the iFUB scheme (iterative fringe upper bound):
// a double-sweep lower bound from a BFS-deep vertex, then BFS from
// the deepest fringe layers of a central root until the upper bound
// meets the best eccentricity found. On small-world graphs this
// terminates after a handful of traversals instead of n.
func Diameter(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	// Start anywhere in the largest component: pick the max-degree
	// vertex (guaranteed non-isolated when edges exist).
	start := int32(0)
	for v := int32(1); int(v) < n; v++ {
		if g.Degree(v) > g.Degree(start) {
			start = v
		}
	}
	if g.Degree(start) == 0 {
		return 0
	}
	// Double sweep: farthest from start, then farthest from there.
	r1 := bfs.Serial(g, start, nil)
	a := farthest(r1)
	r2 := bfs.Serial(g, a, nil)
	b := farthest(r2)
	lower := int(r2.Dist[b])
	// Root the iFUB search at the midpoint of the a-b path.
	mid := b
	for hop := 0; hop < lower/2; hop++ {
		mid = r2.Parent[mid]
	}
	rm := bfs.Serial(g, mid, nil)
	ecc := int(rm.MaxDist())
	// Layers of the mid-rooted BFS tree, deepest first.
	layers := make([][]int32, ecc+1)
	for v, d := range rm.Dist {
		if d >= 0 {
			layers[d] = append(layers[d], int32(v))
		}
	}
	best := lower
	upper := 2 * ecc
	for depth := ecc; depth > 0 && upper > best; depth-- {
		for _, v := range layers[depth] {
			if e := int(bfs.Serial(g, v, nil).MaxDist()); e > best {
				best = e
			}
		}
		// Any vertex at depth <= d has eccentricity <= 2d; once the
		// remaining depth cannot beat best, stop.
		upper = 2 * (depth - 1)
	}
	return best
}

func farthest(r bfs.Result) int32 {
	best := int32(0)
	bd := int32(-1)
	for v, d := range r.Dist {
		if d > bd {
			bd = d
			best = int32(v)
		}
	}
	return best
}
