package datasets

import (
	"fmt"

	"snap/internal/generate"
	"snap/internal/graph"
)

// Named is a data set with its paper-reported metadata.
type Named struct {
	// Label is the paper's name for the instance.
	Label string
	// Description matches the paper's Table 2/3 "type"/source text.
	Description string
	// PaperN and PaperM are the sizes reported in the paper.
	PaperN, PaperM int
	// Directed mirrors the paper's Table 3 directivity column (the
	// community algorithms symmetrize regardless, as the paper does).
	Directed bool
	// Surrogate reports whether the instance is a synthetic stand-in
	// (everything except Karate).
	Surrogate bool
	// BestKnownQ is the paper's Table 2 best-known modularity
	// (NaN-free: 0 when the paper reports none).
	BestKnownQ float64
	// GNQ/PBDQ/PMAQ/PLAQ are the paper's Table 2 reported scores
	// (0 when not reported).
	GNQ, PBDQ, PMAQ, PLAQ float64
	// Build constructs the graph at the given scale in (0, 1]; scale
	// shrinks n and m proportionally for time-budgeted runs. Karate
	// ignores scale.
	Build func(scale float64) *graph.Graph
}

func scaled(x int, scale float64) int {
	if scale >= 1 {
		return x
	}
	s := int(float64(x) * scale)
	if s < 8 {
		s = 8
	}
	return s
}

// Table2 returns the six networks of the paper's Table 2 together with
// the published modularity scores for GN, pBD, pMA, pLA and the
// best-known heuristics.
func Table2() []Named {
	return []Named{
		{
			Label: "Karate", Description: "Zachary's karate club",
			PaperN: 34, PaperM: 78,
			BestKnownQ: 0.431, GNQ: 0.401, PBDQ: 0.397, PMAQ: 0.381, PLAQ: 0.397,
			Build: func(float64) *graph.Graph { return Karate() },
		},
		{
			Label: "Political books", Description: "co-purchased US politics books",
			PaperN: 105, PaperM: 441, Surrogate: true,
			BestKnownQ: 0.527, GNQ: 0.509, PBDQ: 0.502, PMAQ: 0.498, PLAQ: 0.487,
			Build: func(scale float64) *graph.Graph {
				g, _ := Surrogate(SurrogateParams{
					N: scaled(105, scale), M: scaled(441, scale),
					Communities: 4, IntraFrac: 0.78, Skew: 0.4, Seed: 105,
				})
				return g
			},
		},
		{
			Label: "Jazz musicians", Description: "jazz band collaboration network",
			PaperN: 198, PaperM: 2742, Surrogate: true,
			BestKnownQ: 0.445, GNQ: 0.405, PBDQ: 0.405, PMAQ: 0.439, PLAQ: 0.398,
			Build: func(scale float64) *graph.Graph {
				g, _ := Surrogate(SurrogateParams{
					N: scaled(198, scale), M: scaled(2742, scale),
					Communities: 4, IntraFrac: 0.70, Skew: 0.5, Seed: 198,
				})
				return g
			},
		},
		{
			Label: "Metabolic", Description: "C. elegans metabolic network",
			PaperN: 453, PaperM: 2025, Surrogate: true,
			BestKnownQ: 0.435, GNQ: 0.403, PBDQ: 0.402, PMAQ: 0.402, PLAQ: 0.402,
			Build: func(scale float64) *graph.Graph {
				g, _ := Surrogate(SurrogateParams{
					N: scaled(453, scale), M: scaled(2025, scale),
					Communities: 9, IntraFrac: 0.55, Skew: 0.7, Seed: 453,
				})
				return g
			},
		},
		{
			Label: "E-mail", Description: "University of Rovira i Virgili e-mail",
			PaperN: 1133, PaperM: 5451, Surrogate: true,
			BestKnownQ: 0.574, GNQ: 0.532, PBDQ: 0.547, PMAQ: 0.494, PLAQ: 0.487,
			Build: func(scale float64) *graph.Graph {
				g, _ := Surrogate(SurrogateParams{
					N: scaled(1133, scale), M: scaled(5451, scale),
					Communities: 12, IntraFrac: 0.66, Skew: 0.6, Seed: 1133,
				})
				return g
			},
		},
		{
			Label: "Key signing", Description: "PGP web of trust",
			PaperN: 10680, PaperM: 24316, Surrogate: true,
			BestKnownQ: 0.855, GNQ: 0.816, PBDQ: 0.846, PMAQ: 0.733, PLAQ: 0.794,
			Build: func(scale float64) *graph.Graph {
				g, _ := Surrogate(SurrogateParams{
					N: scaled(10680, scale), M: scaled(24316, scale),
					Communities: 120, IntraFrac: 0.875, Skew: 0.6, Seed: 10680,
				})
				return g
			},
		},
	}
}

// Table3 returns the six large instances of the paper's Table 3.
// Each instance's Build(scale) shrinks it proportionally for
// time-budgeted runs (the Actor network additionally carries a
// built-in 1/10 edge scale even at scale 1; 31.8M edges is out of the
// default CI budget — see EXPERIMENTS.md).
func Table3() []Named {
	mk := func(n, m, k int, intra, skew float64, seed int64) func(float64) *graph.Graph {
		return func(s float64) *graph.Graph {
			g, _ := Surrogate(SurrogateParams{
				N: scaled(n, s), M: scaled(m, s),
				Communities: k, IntraFrac: intra, Skew: skew, Seed: seed,
			})
			return g
		}
	}
	nets := []Named{
		{
			Label: "PPI", Description: "human protein interaction network",
			PaperN: 8503, PaperM: 32191, Surrogate: true,
			Build: mk(8503, 32191, 60, 0.7, 0.7, 8503),
		},
		{
			Label: "Citations", Description: "citation network from KDD Cup 2003",
			PaperN: 27400, PaperM: 352504, Directed: true, Surrogate: true,
			Build: mk(27400, 352504, 80, 0.65, 0.8, 27400),
		},
		{
			Label: "DBLP", Description: "CS publication coauthorship network",
			PaperN: 310138, PaperM: 1024262, Surrogate: true,
			Build: mk(310138, 1024262, 900, 0.75, 0.6, 310138),
		},
		{
			Label: "NDwww", Description: "web crawl of nd.edu",
			PaperN: 325729, PaperM: 1090107, Directed: true, Surrogate: true,
			Build: mk(325729, 1090107, 800, 0.7, 0.9, 325729),
		},
		{
			Label: "Actor", Description: "IMDB movie-actor network (edges built at 1/10)",
			PaperN: 392400, PaperM: 31788592, Surrogate: true,
			Build: mk(392400, 3178859, 1000, 0.7, 0.8, 392400),
		},
		{
			Label: "RMAT-SF", Description: "synthetic small-world network (R-MAT)",
			PaperN: 400000, PaperM: 1600000, Surrogate: true,
			Build: func(s float64) *graph.Graph {
				return generate.RMAT(scaled(400000, s), scaled(1600000, s), generate.DefaultRMAT(), 400000)
			},
		},
	}
	return nets
}

// ByLabel finds a named instance in the union of Table2 and Table3.
func ByLabel(label string) (Named, error) {
	for _, n := range Table2() {
		if n.Label == label {
			return n, nil
		}
	}
	for _, n := range Table3() {
		if n.Label == label {
			return n, nil
		}
	}
	return Named{}, fmt.Errorf("datasets: unknown instance %q", label)
}
