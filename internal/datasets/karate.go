// Package datasets provides the networks of the paper's experimental
// study. Zachary's karate club — tiny and in the public domain — is
// embedded verbatim. The other real-world data sets (Political books,
// Jazz musicians, C. elegans metabolic, URV e-mail, PGP key-signing,
// human PPI, KDD citations, DBLP, NDwww, IMDB Actor) cannot be
// redistributed here, so each is replaced by a deterministic synthetic
// surrogate matched on vertex count, edge count, degree skew, and
// planted community strength (chosen so the best-known modularity of
// the surrogate is close to the paper's reported best-known value).
// See DESIGN.md §4 for the substitution rationale.
package datasets

import "snap/internal/graph"

// karateEdges is Zachary's karate club (34 vertices, 78 edges),
// 0-indexed, as published in Zachary (1977).
var karateEdges = [][2]int32{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8},
	{0, 10}, {0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21},
	{0, 31}, {1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19},
	{1, 21}, {1, 30}, {2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13},
	{2, 27}, {2, 28}, {2, 32}, {3, 7}, {3, 12}, {3, 13}, {4, 6},
	{4, 10}, {5, 6}, {5, 10}, {5, 16}, {6, 16}, {8, 30}, {8, 32},
	{8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33}, {15, 32},
	{15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
	{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32},
	{23, 33}, {24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29},
	{26, 33}, {27, 33}, {28, 31}, {28, 33}, {29, 32}, {29, 33},
	{30, 32}, {30, 33}, {31, 32}, {31, 33}, {32, 33},
}

// Karate returns Zachary's karate club network (n=34, m=78), the
// classic community-detection benchmark of the paper's Table 2.
func Karate() *graph.Graph {
	edges := make([]graph.Edge, len(karateEdges))
	for i, e := range karateEdges {
		edges[i] = graph.Edge{U: e[0], V: e[1], W: 1}
	}
	return graph.MustBuild(34, edges, graph.BuildOptions{})
}
