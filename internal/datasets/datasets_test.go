package datasets

import (
	"testing"

	"snap/internal/community"
	"snap/internal/graph"
)

func TestKarateExactSizes(t *testing.T) {
	g := Karate()
	if g.NumVertices() != 34 || g.NumEdges() != 78 {
		t.Fatalf("karate n=%d m=%d, want 34/78", g.NumVertices(), g.NumEdges())
	}
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Known degrees: the instructor (0) has 16, the president (33) 17.
	if g.Degree(0) != 16 || g.Degree(33) != 17 {
		t.Fatalf("degrees(0, 33) = %d, %d; want 16, 17", g.Degree(0), g.Degree(33))
	}
}

func TestKarateGroundTruthSplitQuality(t *testing.T) {
	// The observed faction split has Q ~ 0.3715 (standard result).
	g := Karate()
	faction1 := map[int32]bool{
		0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true,
		7: true, 10: true, 11: true, 12: true, 13: true, 16: true,
		17: true, 19: true, 21: true,
	}
	assign := make([]int32, 34)
	for v := int32(0); v < 34; v++ {
		if faction1[v] {
			assign[v] = 0
		} else {
			assign[v] = 1
		}
	}
	q := community.Modularity(g, assign, 1)
	if q < 0.35 || q > 0.39 {
		t.Fatalf("faction split Q = %.4f, want ~0.3715", q)
	}
}

func TestSurrogateMatchesRequestedSizes(t *testing.T) {
	g, truth := Surrogate(SurrogateParams{
		N: 500, M: 2000, Communities: 5, IntraFrac: 0.7, Skew: 0.5, Seed: 1,
	})
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Edge count should land within a few percent of target.
	if g.NumEdges() < 1900 || g.NumEdges() > 2000 {
		t.Fatalf("m = %d, want ~2000", g.NumEdges())
	}
	if len(truth) != 500 {
		t.Fatal("truth size")
	}
	// Planted structure must be recoverable with decent modularity.
	q := community.Modularity(g, truth, 1)
	if q < 0.4 {
		t.Fatalf("planted Q = %.3f, want >= 0.4", q)
	}
}

func TestSurrogateDeterministic(t *testing.T) {
	p := SurrogateParams{N: 200, M: 800, Communities: 4, IntraFrac: 0.7, Seed: 9}
	g1, _ := Surrogate(p)
	g2, _ := Surrogate(p)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("surrogate not deterministic")
	}
	for v := int32(0); int(v) < g1.NumVertices(); v++ {
		a, b := g1.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree differs at %d", v)
		}
	}
}

func TestTable2CatalogComplete(t *testing.T) {
	nets := Table2()
	if len(nets) != 6 {
		t.Fatalf("Table2 has %d networks, want 6", len(nets))
	}
	wantN := map[string]int{
		"Karate": 34, "Political books": 105, "Jazz musicians": 198,
		"Metabolic": 453, "E-mail": 1133, "Key signing": 10680,
	}
	for _, net := range nets {
		if wantN[net.Label] != net.PaperN {
			t.Fatalf("%s: paper n = %d, want %d", net.Label, net.PaperN, wantN[net.Label])
		}
		if net.BestKnownQ <= 0 || net.GNQ <= 0 {
			t.Fatalf("%s: missing paper scores", net.Label)
		}
		g := net.Build(0.25)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty build", net.Label)
		}
		if err := graph.Validate(g); err != nil {
			t.Fatalf("%s: %v", net.Label, err)
		}
	}
}

func TestTable2SurrogatesReachPaperQBand(t *testing.T) {
	// At full scale, pMA on each surrogate should land within a
	// sensible distance of the paper's pMA score — this is the knob
	// check for the tuned IntraFrac values. Skip the two largest in
	// short mode.
	for _, net := range Table2() {
		if testing.Short() && net.PaperN > 500 {
			continue
		}
		g := net.Build(1)
		got, _ := community.PMA(g, community.PMAOptions{StopWhenNegative: true})
		if got.Q < net.PMAQ-0.15 {
			t.Fatalf("%s: pMA Q = %.3f, paper %.3f — surrogate mistuned", net.Label, got.Q, net.PMAQ)
		}
	}
}

func TestTable3CatalogComplete(t *testing.T) {
	nets := Table3()
	if len(nets) != 6 {
		t.Fatalf("Table3 has %d networks, want 6", len(nets))
	}
	labels := map[string]bool{}
	for _, net := range nets {
		labels[net.Label] = true
		g := net.Build(0.02)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty build at scale 0.02", net.Label)
		}
	}
	for _, want := range []string{"PPI", "Citations", "DBLP", "NDwww", "Actor", "RMAT-SF"} {
		if !labels[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestByLabel(t *testing.T) {
	if _, err := ByLabel("Karate"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByLabel("PPI"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByLabel("nope"); err == nil {
		t.Fatal("want error for unknown label")
	}
}
