package datasets

import (
	"math"
	"math/rand"

	"snap/internal/graph"
)

// SurrogateParams describe a synthetic stand-in for a real network.
type SurrogateParams struct {
	// N and M are the target vertex and edge counts (matched to the
	// real data set).
	N, M int
	// Communities is the number of planted communities.
	Communities int
	// IntraFrac is the fraction of edges placed inside communities.
	// For roughly equal communities the achievable modularity is
	// approximately IntraFrac − 1/Communities, which is how the
	// surrogates are tuned to the paper's best-known Q values.
	IntraFrac float64
	// Skew is the Zipf-like exponent of the within-community endpoint
	// sampling; larger values produce heavier-tailed degree
	// distributions (0 disables skew).
	Skew float64
	// Seed drives the deterministic generation.
	Seed int64
}

// Surrogate generates a deterministic community-structured small-world
// surrogate network. Edges are sampled with community-aware endpoints
// and Zipf-skewed degree propensities; a low-diameter spanning tree per
// community guarantees the communities are internally connected so the
// network's component structure resembles the originals.
func Surrogate(p SurrogateParams) (*graph.Graph, []int32) {
	rng := rand.New(rand.NewSource(p.Seed))
	n, k := p.N, p.Communities
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	truth := make([]int32, n)
	// Community sizes: mildly geometric so sizes are uneven, like
	// real networks.
	sizes := communitySizes(n, k, rng)
	bounds := make([]int, k+1)
	for i, s := range sizes {
		bounds[i+1] = bounds[i] + s
	}
	for c := 0; c < k; c++ {
		for v := bounds[c]; v < bounds[c+1]; v++ {
			truth[v] = int32(c)
		}
	}

	// Per-vertex propensity: Zipf within its community (position-based
	// so it is deterministic).
	prop := make([]float64, n)
	for c := 0; c < k; c++ {
		for i, v := 0, bounds[c]; v < bounds[c+1]; i, v = i+1, v+1 {
			if p.Skew > 0 {
				prop[v] = 1 / math.Pow(float64(i+1), p.Skew)
			} else {
				prop[v] = 1
			}
		}
	}
	// Alias-free weighted sampling per community via cumulative sums.
	cum := make([][]float64, k)
	for c := 0; c < k; c++ {
		cs := make([]float64, sizes[c])
		var acc float64
		for i := 0; i < sizes[c]; i++ {
			acc += prop[bounds[c]+i]
			cs[i] = acc
		}
		cum[c] = cs
	}
	sample := func(c int) int32 {
		cs := cum[c]
		r := rng.Float64() * cs[len(cs)-1]
		lo, hi := 0, len(cs)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cs[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(bounds[c] + lo)
	}

	seen := make(map[uint64]struct{}, p.M)
	edges := make([]graph.Edge, 0, p.M)
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		return true
	}

	// Spanning random recursive tree per community (guarantees intra
	// connectivity with O(log size) diameter, like real communities —
	// a spanning *chain* would concentrate betweenness on its middle
	// edges and make divisive algorithms cut communities internally).
	for c := 0; c < k; c++ {
		for v := bounds[c] + 1; v < bounds[c+1]; v++ {
			u := bounds[c] + rng.Intn(v-bounds[c])
			addEdge(int32(u), int32(v))
		}
	}
	intraTarget := int(p.IntraFrac * float64(p.M))
	guard := 0
	for len(edges) < intraTarget && guard < 50*p.M {
		guard++
		c := pickCommunity(sizes, rng)
		if sizes[c] < 2 {
			continue
		}
		addEdge(sample(c), sample(c))
	}
	guard = 0
	for len(edges) < p.M && guard < 50*p.M {
		guard++
		c1 := pickCommunity(sizes, rng)
		c2 := pickCommunity(sizes, rng)
		if c1 == c2 {
			continue
		}
		addEdge(sample(c1), sample(c2))
	}
	return graph.MustBuild(n, edges, graph.BuildOptions{}), truth
}

// communitySizes splits n into k sizes with a mild geometric spread
// (largest is roughly 2-3x the smallest), summing exactly to n.
func communitySizes(n, k int, rng *rand.Rand) []int {
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = 1 + rng.Float64()*1.5
		total += weights[i]
	}
	sizes := make([]int, k)
	used := 0
	for i := 0; i < k; i++ {
		s := int(weights[i] / total * float64(n))
		if s < 1 {
			s = 1
		}
		sizes[i] = s
		used += s
	}
	// Fix rounding drift: grow the largest community or shrink the
	// largest shrinkable ones until the sizes sum exactly to n.
	for used != n {
		largest := 0
		for i, s := range sizes {
			if s > sizes[largest] {
				largest = i
			}
		}
		if used < n {
			sizes[largest] += n - used
			used = n
		} else {
			shrink := used - n
			if avail := sizes[largest] - 1; shrink > avail {
				shrink = avail
			}
			sizes[largest] -= shrink
			used -= shrink
			if shrink == 0 {
				break // all communities at minimum size (k == n)
			}
		}
	}
	return sizes
}

func pickCommunity(sizes []int, rng *rand.Rand) int {
	// Probability proportional to size (bigger communities carry more
	// of both intra and inter edges, like real networks).
	total := 0
	for _, s := range sizes {
		total += s
	}
	r := rng.Intn(total)
	for c, s := range sizes {
		if r < s {
			return c
		}
		r -= s
	}
	return len(sizes) - 1
}
