package components

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snap/internal/generate"
	"snap/internal/graph"
)

func buildGraph(t *testing.T, n int, pairs [][2]int32) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1]}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConnectedTwoComponents(t *testing.T) {
	g := buildGraph(t, 6, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	lab := Connected(g, nil)
	if lab.Count != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("count = %d, want 3", lab.Count)
	}
	if lab.Comp[0] != lab.Comp[2] || lab.Comp[0] == lab.Comp[3] {
		t.Fatalf("labels wrong: %v", lab.Comp)
	}
	sizes := lab.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 6 {
		t.Fatalf("sizes sum %d", total)
	}
	if _, size := lab.Largest(); size != 3 {
		t.Fatalf("largest = %d", size)
	}
}

func TestConnectedAliveMask(t *testing.T) {
	g := buildGraph(t, 3, [][2]int32{{0, 1}, {1, 2}})
	alive := []bool{true, false}
	if id01 := g.EdgeIDOf(0, 1); id01 == 1 {
		alive = []bool{false, true}
	}
	lab := Connected(g, alive)
	if lab.Count != 2 {
		t.Fatalf("count = %d, want 2 with one edge dead", lab.Count)
	}
}

func sameLabeling(a, b Labeling) bool {
	if a.Count != b.Count || len(a.Comp) != len(b.Comp) {
		return false
	}
	// Compare as partitions (label names may differ).
	mapping := map[int32]int32{}
	for v := range a.Comp {
		if want, ok := mapping[a.Comp[v]]; ok {
			if want != b.Comp[v] {
				return false
			}
		} else {
			mapping[a.Comp[v]] = b.Comp[v]
		}
	}
	return true
}

func TestConnectedParallelMatchesSerial(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := generate.RMAT(400, 900, generate.DefaultRMAT(), int64(trial))
		want := Connected(g, nil)
		for _, workers := range []int{1, 2, 4} {
			got := ConnectedParallel(g, nil, workers)
			if !sameLabeling(want, got) {
				t.Fatalf("trial %d workers %d: partitions differ (%d vs %d comps)",
					trial, workers, want.Count, got.Count)
			}
		}
	}
}

func TestConnectedParallelWithMask(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := generate.ErdosRenyi(300, 600, 12)
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = rng.Float64() < 0.5
	}
	want := Connected(g, alive)
	got := ConnectedParallel(g, alive, 4)
	if !sameLabeling(want, got) {
		t.Fatalf("masked partitions differ: %d vs %d comps", want.Count, got.Count)
	}
}

func TestQuickUnionFind(t *testing.T) {
	check := func(ops []uint16) bool {
		n := 32
		uf := NewUnionFind(n)
		oracle := make([]int, n) // oracle labels by brute force
		for i := range oracle {
			oracle[i] = i
		}
		relabel := func(from, to int) {
			for i := range oracle {
				if oracle[i] == from {
					oracle[i] = to
				}
			}
		}
		for _, op := range ops {
			a := int32(op % uint16(n))
			b := int32((op / 37) % uint16(n))
			merged := uf.Union(a, b)
			if merged != (oracle[a] != oracle[b]) {
				return false
			}
			relabel(oracle[a], oracle[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (uf.Find(int32(i)) == uf.Find(int32(j))) != (oracle[i] == oracle[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBiconnectedBridgesOnPath(t *testing.T) {
	// Every edge of a path is a bridge; interior vertices articulate.
	g := buildGraph(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	bc := Biconnected(g)
	for eid := 0; eid < g.NumEdges(); eid++ {
		if !bc.Bridge[eid] {
			t.Fatalf("path edge %d not a bridge", eid)
		}
	}
	wantArt := []bool{false, true, true, true, false}
	for v, want := range wantArt {
		if bc.Articulation[v] != want {
			t.Fatalf("articulation[%d] = %v, want %v", v, bc.Articulation[v], want)
		}
	}
	if bc.CompCount != 4 {
		t.Fatalf("CompCount = %d, want 4", bc.CompCount)
	}
}

func TestBiconnectedRingHasNoBridges(t *testing.T) {
	g := generate.Ring(12)
	bc := Biconnected(g)
	if len(bc.Bridges()) != 0 {
		t.Fatalf("ring has bridges: %v", bc.Bridges())
	}
	if len(bc.ArticulationPoints()) != 0 {
		t.Fatal("ring has articulation points")
	}
	if bc.CompCount != 1 {
		t.Fatalf("ring CompCount = %d", bc.CompCount)
	}
}

func TestBiconnectedBarbell(t *testing.T) {
	// Two triangles joined by a bridge 2-3.
	g := buildGraph(t, 6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	bc := Biconnected(g)
	bridges := bc.Bridges()
	if len(bridges) != 1 || bridges[0] != g.EdgeIDOf(2, 3) {
		t.Fatalf("bridges = %v, want just edge (2,3)", bridges)
	}
	arts := bc.ArticulationPoints()
	if len(arts) != 2 {
		t.Fatalf("articulation points = %v, want {2, 3}", arts)
	}
	if bc.CompCount != 3 {
		t.Fatalf("CompCount = %d, want 3 (two triangles + bridge)", bc.CompCount)
	}
	// Edges of the same triangle share a component.
	if bc.EdgeComp[g.EdgeIDOf(0, 1)] != bc.EdgeComp[g.EdgeIDOf(1, 2)] {
		t.Fatal("triangle edges not in one biconnected component")
	}
}

// bridgeOracle removes each edge and counts components (brute force).
func bridgeOracle(g *graph.Graph) []bool {
	m := g.NumEdges()
	base := Connected(g, nil).Count
	out := make([]bool, m)
	for e := 0; e < m; e++ {
		alive := make([]bool, m)
		for i := range alive {
			alive[i] = i != e
		}
		if Connected(g, alive).Count > base {
			out[e] = true
		}
	}
	return out
}

func TestBridgesMatchOracleOnRandomGraphs(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		g := generate.ErdosRenyi(40, 50, int64(trial))
		want := bridgeOracle(g)
		got := Biconnected(g).Bridge
		for e := range want {
			if want[e] != got[e] {
				t.Fatalf("trial %d: bridge[%d] = %v, want %v", trial, e, got[e], want[e])
			}
		}
	}
}

func TestBiconnectedEdgePartition(t *testing.T) {
	// Every edge must belong to exactly one biconnected component.
	g := generate.RMAT(200, 500, generate.DefaultRMAT(), 77)
	bc := Biconnected(g)
	for e := 0; e < g.NumEdges(); e++ {
		if bc.EdgeComp[e] < 0 || int(bc.EdgeComp[e]) >= bc.CompCount {
			t.Fatalf("edge %d has invalid component %d", e, bc.EdgeComp[e])
		}
	}
}

func TestBoruvkaMatchesPrim(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := generate.RandomWeights(generate.ErdosRenyi(120, 400, int64(trial)), 20, int64(trial+100))
		want := PrimMST(g)
		got := BoruvkaMST(g, 3)
		if len(want.EdgeIDs) != len(got.EdgeIDs) {
			t.Fatalf("trial %d: forest sizes differ: %d vs %d", trial, len(want.EdgeIDs), len(got.EdgeIDs))
		}
		if want.TotalWeight != got.TotalWeight {
			t.Fatalf("trial %d: weights differ: %g vs %g", trial, want.TotalWeight, got.TotalWeight)
		}
	}
}

func TestBoruvkaSpanningForestOnUnweighted(t *testing.T) {
	g := generate.ErdosRenyi(200, 400, 9)
	comps := Connected(g, nil).Count
	mst := BoruvkaMST(g, 2)
	if len(mst.EdgeIDs) != g.NumVertices()-comps {
		t.Fatalf("forest edges = %d, want n - #comps = %d",
			len(mst.EdgeIDs), g.NumVertices()-comps)
	}
	// Forest must be acyclic: union-find over chosen edges never cycles.
	uf := NewUnionFind(g.NumVertices())
	eps := g.EdgeEndpoints()
	for _, id := range mst.EdgeIDs {
		if !uf.Union(eps[id].U, eps[id].V) {
			t.Fatalf("edge %d creates a cycle", id)
		}
	}
}

func TestSpanningForest(t *testing.T) {
	g := buildGraph(t, 5, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	pe := SpanningForest(g)
	roots, treeEdges := 0, 0
	for _, e := range pe {
		if e == -1 {
			roots++
		} else {
			treeEdges++
		}
	}
	if roots != 2 || treeEdges != 3 {
		t.Fatalf("roots=%d treeEdges=%d", roots, treeEdges)
	}
	if w := ForestWeight(g, []int32{0, 1}); w != 2 {
		t.Fatalf("ForestWeight = %g", w)
	}
}

func BenchmarkConnectedParallel(b *testing.B) {
	g := generate.RMAT(1<<15, 1<<17, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedParallel(g, nil, 0)
	}
}

func BenchmarkBiconnected(b *testing.B) {
	g := generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Biconnected(g)
	}
}
