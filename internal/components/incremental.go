package components

// Incremental connectivity for dynamic networks — the paper's stated
// future-work direction ("extend SNAP to support the topological
// analysis of dynamic networks"). Edge insertions are processed online
// in near-constant amortized time; paired with graph.Dynamic it
// supports streaming connectivity queries over assimilated interaction
// data without recomputing components from scratch.

// Incremental maintains connected components of a growing graph.
type Incremental struct {
	uf    *UnionFind
	comps int
	edges int
}

// NewIncremental returns an incremental connectivity index over n
// isolated vertices (n components).
func NewIncremental(n int) *Incremental {
	return &Incremental{uf: NewUnionFind(n), comps: n}
}

// AddEdge records the edge (u, v), reporting whether it merged two
// previously separate components.
func (inc *Incremental) AddEdge(u, v int32) bool {
	inc.edges++
	if inc.uf.Union(u, v) {
		inc.comps--
		return true
	}
	return false
}

// Connected reports whether u and v are currently in one component.
func (inc *Incremental) Connected(u, v int32) bool {
	return inc.uf.Find(u) == inc.uf.Find(v)
}

// Components reports the current number of connected components.
func (inc *Incremental) Components() int { return inc.comps }

// Edges reports the number of insertions processed (including
// redundant ones).
func (inc *Incremental) Edges() int { return inc.edges }

// Labeling materializes the current component labeling.
func (inc *Incremental) Labeling() Labeling { return inc.uf.Labeling() }
