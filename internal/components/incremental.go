package components

import "snap/internal/graph"

// Incremental connectivity for dynamic networks — the paper's stated
// future-work direction ("extend SNAP to support the topological
// analysis of dynamic networks"). Edge insertions are processed online
// in near-constant amortized time; it is the insert fast path of the
// snapshot-epoch dynamic-components kernel in internal/ingest, which
// falls back to an epoch-scoped BFS recompute only when a committed
// deletion might split a component.

// Incremental maintains connected components of a growing graph.
type Incremental struct {
	uf    *UnionFind
	comps int
	edges int
}

// NewIncremental returns an incremental connectivity index over n
// isolated vertices (n components).
func NewIncremental(n int) *Incremental {
	return &Incremental{uf: NewUnionFind(n), comps: n}
}

// AddEdge records the edge (u, v), reporting whether it merged two
// previously separate components.
func (inc *Incremental) AddEdge(u, v int32) bool {
	inc.edges++
	if inc.uf.Union(u, v) {
		inc.comps--
		return true
	}
	return false
}

// AddEdges records a batch of edges, returning the number of component
// merges it caused. Self-loops in the batch are harmless no-ops for
// connectivity (they never merge) but still count as processed
// insertions.
func (inc *Incremental) AddEdges(edges []graph.Edge) int {
	merged := 0
	for _, e := range edges {
		if inc.AddEdge(e.U, e.V) {
			merged++
		}
	}
	return merged
}

// Connected reports whether u and v are currently in one component.
func (inc *Incremental) Connected(u, v int32) bool {
	return inc.uf.Find(u) == inc.uf.Find(v)
}

// Components reports the current number of connected components.
func (inc *Incremental) Components() int { return inc.comps }

// Edges reports the number of AddEdge operations processed — an
// operation count, not a distinct-edge count: redundant insertions of
// an already-connected pair and duplicate insertions of the same pair
// each increment it, so it can exceed the number of distinct edges in
// the underlying graph.
func (inc *Incremental) Edges() int { return inc.edges }

// Labeling materializes the current component labeling.
func (inc *Incremental) Labeling() Labeling { return inc.uf.Labeling() }

// IncrementalFromLabeling seeds an incremental connectivity index from
// an existing component labeling: vertices labeled together start in
// one set. The ingest layer uses this to resume the union-find insert
// fast path right after an epoch-scoped recompute instead of replaying
// the whole edge set.
func IncrementalFromLabeling(lab Labeling) *Incremental {
	n := len(lab.Comp)
	inc := &Incremental{uf: NewUnionFind(n), comps: lab.Count}
	rep := make([]int32, lab.Count)
	for i := range rep {
		rep[i] = -1
	}
	for v, c := range lab.Comp {
		if rep[c] < 0 {
			rep[c] = int32(v)
			inc.uf.rank[v] = 1
			continue
		}
		inc.uf.parent[v] = rep[c]
	}
	return inc
}
