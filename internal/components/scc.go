package components

import "snap/internal/graph"

// StronglyConnected computes the strongly connected components of a
// directed graph with an iterative Tarjan algorithm (explicit stack, so
// web-scale crawls like NDwww cannot overflow the goroutine stack).
// For undirected graphs it degenerates to connected components.
// Component ids are dense in [0, Count) in reverse topological order
// of the condensation (a vertex's component id is always >= those of
// the components it can reach... specifically Tarjan emits sinks
// first).
func StronglyConnected(g *graph.Graph) Labeling {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32   // Tarjan's component stack
	var count int32     // next component id
	var nextIndex int32 // DFS preorder counter

	// Explicit DFS state.
	type frame struct {
		v   int32
		arc int64
	}
	var dfs []frame
	cursorEnd := func(v int32) int64 { return g.Offsets[v+1] }

	for root := int32(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{v: root, arc: g.Offsets[root]})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.arc < cursorEnd(v) {
				u := g.Adj[f.arc]
				f.arc++
				if index[u] == -1 {
					// Tree arc: descend.
					index[u] = nextIndex
					low[u] = nextIndex
					nextIndex++
					stack = append(stack, u)
					onStack[u] = true
					dfs = append(dfs, frame{v: u, arc: g.Offsets[u]})
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
				continue
			}
			// Retreat.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is an SCC root: pop its component.
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return Labeling{Comp: comp, Count: int(count)}
}

// Condensation builds the DAG of strongly connected components: one
// vertex per SCC, a (directed) edge for every pair of SCCs joined by
// at least one original arc.
func Condensation(g *graph.Graph, scc Labeling) *graph.Graph {
	type pair struct{ a, b int32 }
	seen := map[pair]bool{}
	var edges []graph.Edge
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		cv := scc.Comp[v]
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			cu := scc.Comp[g.Adj[a]]
			if cu == cv {
				continue
			}
			p := pair{cv, cu}
			if !seen[p] {
				seen[p] = true
				edges = append(edges, graph.Edge{U: cv, V: cu, W: 1})
			}
		}
	}
	out, err := graph.Build(scc.Count, edges, graph.BuildOptions{Directed: true})
	if err != nil {
		panic("components: condensation: " + err.Error())
	}
	return out
}
