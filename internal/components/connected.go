// Package components implements SNAP's connectivity kernels: connected
// components (serial union-find reference and parallel label
// propagation with pointer jumping), spanning forests, Borůvka minimum
// spanning forests, and biconnected components with articulation-point
// and bridge detection. Bridges and articulation points are the
// preprocessing step behind the pBD and pLA community algorithms.
package components

import (
	"sync/atomic"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// Labeling describes a partition of the vertices into components.
type Labeling struct {
	// Comp maps each vertex to a dense component id in [0, Count).
	Comp []int32
	// Count is the number of components.
	Count int
}

// Sizes returns the number of vertices in each component.
func (l Labeling) Sizes() []int {
	sizes := make([]int, l.Count)
	for _, c := range l.Comp {
		sizes[c]++
	}
	return sizes
}

// Members returns the vertices of every component.
func (l Labeling) Members() [][]int32 {
	out := make([][]int32, l.Count)
	for _, s := range l.Sizes() {
		_ = s
	}
	sizes := l.Sizes()
	for c, s := range sizes {
		out[c] = make([]int32, 0, s)
	}
	for v, c := range l.Comp {
		out[c] = append(out[c], int32(v))
	}
	return out
}

// Largest returns the id and size of the largest component.
func (l Labeling) Largest() (id int32, size int) {
	for c, s := range l.Sizes() {
		if s > size {
			id, size = int32(c), s
		}
	}
	return id, size
}

// Connected computes connected components (serial reference
// implementation). When alive is non-nil, only edges with
// Alive[eid] == true are considered — the filtered view used inside
// the divisive clustering loop. Directed graphs are treated as
// undirected (weak connectivity).
//
// Undirected graphs run a BFS sweep through the shared frontier
// engine: each unlabeled vertex in ascending order seeds a traversal
// that stamps its whole component, so labels come out in
// smallest-member order — the same dense numbering denseLabels
// produces — while reusing one pooled epoch-stamped engine instead of
// a union-find array pass. Directed graphs keep the union-find
// (out-adjacency alone cannot discover weak components).
func Connected(g *graph.Graph, alive []bool) Labeling {
	n := g.NumVertices()
	if g.Directed() {
		uf := NewUnionFind(n)
		for v := int32(0); int(v) < n; v++ {
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				if alive != nil && !alive[g.EID[a]] {
					continue
				}
				uf.Union(v, g.Adj[a])
			}
		}
		return uf.Labeling()
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	e := frontier.AcquireEngine(n)
	defer frontier.ReleaseEngine(e)
	var count int32
	for v := int32(0); int(v) < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		e.Run(g, v, alive, -1)
		for _, u := range e.Order() {
			comp[u] = count
		}
		count++
	}
	return Labeling{Comp: comp, Count: int(count)}
}

// ConnectedParallel computes connected components by parallel label
// propagation with pointer jumping (a Shiloach–Vishkin-style scheme):
// every vertex repeatedly adopts the minimum label in its closed
// neighborhood, with a jumping pass to collapse label chains. It
// matches Connected exactly and is used for the O(m)-work per-iteration
// step of pBD.
func ConnectedParallel(g *graph.Graph, alive []bool, workers int) Labeling {
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	if n == 0 {
		return Labeling{Comp: label, Count: 0}
	}
	for {
		var changed int64
		par.ForChunkedN(n, workers, func(_, lo, hi int) {
			var local int64
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				best := atomic.LoadInt32(&label[v])
				alo, ahi := g.Offsets[v], g.Offsets[v+1]
				for a := alo; a < ahi; a++ {
					if alive != nil && !alive[g.EID[a]] {
						continue
					}
					lu := atomic.LoadInt32(&label[g.Adj[a]])
					if lu < best {
						best = lu
					}
				}
				// Hook: lower our label and our current root's label.
				for {
					cur := atomic.LoadInt32(&label[v])
					if best >= cur {
						break
					}
					if atomic.CompareAndSwapInt32(&label[v], cur, best) {
						local++
						break
					}
				}
			}
			if local > 0 {
				atomic.AddInt64(&changed, local)
			}
		})
		// Pointer jumping: label[v] = label[label[v]] until fixpoint.
		for {
			var jumped int64
			par.ForChunkedN(n, workers, func(_, lo, hi int) {
				var local int64
				for v := lo; v < hi; v++ {
					l := atomic.LoadInt32(&label[v])
					ll := atomic.LoadInt32(&label[l])
					if ll < l {
						atomic.StoreInt32(&label[v], ll)
						local++
					}
				}
				if local > 0 {
					atomic.AddInt64(&jumped, local)
				}
			})
			if jumped == 0 {
				break
			}
		}
		if changed == 0 {
			break
		}
	}
	return denseLabels(label)
}

// denseLabels renumbers arbitrary representative labels to [0, Count).
func denseLabels(label []int32) Labeling {
	remap := make(map[int32]int32, 64)
	comp := make([]int32, len(label))
	for v, l := range label {
		id, ok := remap[l]
		if !ok {
			id = int32(len(remap))
			remap[l] = id
		}
		comp[v] = id
	}
	return Labeling{Comp: comp, Count: len(remap)}
}

// UnionFind is a weighted-union, path-halving disjoint-set forest over
// int32 vertex ids.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &UnionFind{parent: p, rank: make([]int8, n)}
}

// Find returns the representative of v's set.
func (u *UnionFind) Find(v int32) int32 {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]] // path halving
		v = u.parent[v]
	}
	return v
}

// Union merges the sets of a and b, reporting whether they were
// previously distinct.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Labeling converts the forest to a dense component labeling.
func (u *UnionFind) Labeling() Labeling {
	label := make([]int32, len(u.parent))
	for v := range label {
		label[v] = u.Find(int32(v))
	}
	return denseLabels(label)
}
