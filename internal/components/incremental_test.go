package components

import (
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestIncrementalBasics(t *testing.T) {
	inc := NewIncremental(5)
	if inc.Components() != 5 {
		t.Fatalf("components = %d", inc.Components())
	}
	if !inc.AddEdge(0, 1) {
		t.Fatal("first edge should merge")
	}
	if inc.AddEdge(1, 0) {
		t.Fatal("redundant edge should not merge")
	}
	if !inc.Connected(0, 1) || inc.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	inc.AddEdge(2, 3)
	inc.AddEdge(1, 2)
	if inc.Components() != 2 { // {0,1,2,3}, {4}
		t.Fatalf("components = %d, want 2", inc.Components())
	}
	if inc.Edges() != 4 {
		t.Fatalf("edges = %d", inc.Edges())
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	// Streaming the edges of a random graph must reproduce the batch
	// connected-components result at every prefix checkpoint.
	g := generate.ErdosRenyi(300, 900, 42)
	eps := g.EdgeEndpoints()
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(eps), func(i, j int) { eps[i], eps[j] = eps[j], eps[i] })

	inc := NewIncremental(g.NumVertices())
	for i, e := range eps {
		inc.AddEdge(e.U, e.V)
		if i%200 == 0 || i == len(eps)-1 {
			// Batch recompute over the prefix.
			uf := NewUnionFind(g.NumVertices())
			comps := g.NumVertices()
			for _, pe := range eps[:i+1] {
				if uf.Union(pe.U, pe.V) {
					comps--
				}
			}
			if inc.Components() != comps {
				t.Fatalf("prefix %d: incremental %d vs batch %d",
					i, inc.Components(), comps)
			}
		}
	}
	lab := inc.Labeling()
	batch := Connected(g, nil)
	if lab.Count != batch.Count {
		t.Fatalf("final labeling: %d vs %d", lab.Count, batch.Count)
	}
}

func TestIncrementalAddEdges(t *testing.T) {
	inc := NewIncremental(6)
	merged := inc.AddEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, // duplicate: one merge
		{U: 2, V: 3}, {U: 3, V: 4},
		{U: 5, V: 5}, // self-loop: processed, never merges
	})
	if merged != 3 {
		t.Fatalf("merged = %d, want 3", merged)
	}
	if inc.Components() != 3 { // {0,1}, {2,3,4}, {5}
		t.Fatalf("components = %d, want 3", inc.Components())
	}
	if inc.Edges() != 5 { // operation count, not distinct edges
		t.Fatalf("edges = %d, want 5", inc.Edges())
	}
}

func TestIncrementalFromLabeling(t *testing.T) {
	g := generate.ErdosRenyi(400, 500, 11)
	lab := Connected(g, nil)
	inc := IncrementalFromLabeling(lab)
	if inc.Components() != lab.Count {
		t.Fatalf("components = %d, want %d", inc.Components(), lab.Count)
	}
	got := inc.Labeling()
	for v := range got.Comp {
		if got.Comp[v] != lab.Comp[v] {
			t.Fatalf("label mismatch at %d: %d vs %d", v, got.Comp[v], lab.Comp[v])
		}
	}
	// Resumed index must keep merging correctly.
	var u, v int32 = -1, -1
	for x := int32(1); int(x) < len(lab.Comp); x++ {
		if lab.Comp[x] != lab.Comp[0] {
			u, v = 0, x
			break
		}
	}
	if u >= 0 {
		if !inc.AddEdge(u, v) {
			t.Fatal("cross-component insert must merge")
		}
		if inc.Components() != lab.Count-1 || !inc.Connected(u, v) {
			t.Fatal("merge after resume not reflected")
		}
	}
}
