package components

import (
	"snap/internal/frontier"
	"snap/internal/graph"
)

// BiCC is the result of biconnected-components decomposition.
type BiCC struct {
	// Articulation[v] reports whether v is an articulation (cut) point.
	Articulation []bool
	// Bridge[eid] reports whether the edge is a bridge (its removal
	// disconnects its component). Bridges are the seed set of the
	// pBD high-centrality heuristic and the pLA split step.
	Bridge []bool
	// EdgeComp maps each edge id to its biconnected-component id in
	// [0, CompCount). Every edge belongs to exactly one biconnected
	// component.
	EdgeComp []int32
	// CompCount is the number of biconnected components.
	CompCount int
}

// Biconnected decomposes an undirected graph into biconnected
// components using an iterative Hopcroft–Tarjan lowpoint DFS (iterative
// so million-vertex small-world graphs cannot overflow the goroutine
// stack). Directed graphs are treated as undirected.
func Biconnected(g *graph.Graph) BiCC {
	n := g.NumVertices()
	m := g.NumEdges()
	res := BiCC{
		Articulation: make([]bool, n),
		Bridge:       make([]bool, m),
		EdgeComp:     make([]int32, m),
	}
	for i := range res.EdgeComp {
		res.EdgeComp[i] = -1
	}

	disc := make([]int32, n)
	low := make([]int32, n)
	parentEdge := make([]int32, n) // edge id used to reach v; -1 at roots
	for i := range disc {
		disc[i] = -1
		parentEdge[i] = -1
	}

	// Explicit DFS stacks (shared frontier primitives): per-vertex arc
	// cursor plus Tarjan's edge stack of tree/back edge ids.
	cursor := make([]int64, n)
	var stack, edgeStack frontier.Stack
	var timer int32
	var comp int32

	for root := int32(0); int(root) < n; root++ {
		if disc[root] != -1 {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		cursor[root] = g.Offsets[root]
		stack.Push(root)
		rootChildren := 0

		for stack.Len() > 0 {
			v := stack.Top()
			if cursor[v] < g.Offsets[v+1] {
				a := cursor[v]
				cursor[v]++
				u := g.Adj[a]
				eid := g.EID[a]
				if eid == parentEdge[v] {
					continue // don't traverse the tree edge back up
				}
				if disc[u] == -1 {
					// Tree edge.
					if v == root {
						rootChildren++
					}
					parentEdge[u] = eid
					disc[u] = timer
					low[u] = timer
					timer++
					cursor[u] = g.Offsets[u]
					edgeStack.Push(eid)
					stack.Push(u)
				} else if disc[u] < disc[v] {
					// Back edge to an ancestor (or cross within the
					// DFS of an undirected graph, which cannot occur).
					edgeStack.Push(eid)
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
			} else {
				// Retreat from v to its parent.
				stack.Pop()
				if stack.Len() == 0 {
					break
				}
				p := stack.Top()
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					// p is an articulation point (unless it is the
					// root, handled below); pop one biconnected
					// component ending at the tree edge p—v.
					if p != root {
						res.Articulation[p] = true
					}
					te := parentEdge[v]
					compSize := 0
					for {
						if edgeStack.Len() == 0 {
							break
						}
						e := edgeStack.Pop()
						res.EdgeComp[e] = comp
						compSize++
						if e == te {
							break
						}
					}
					if compSize == 1 {
						res.Bridge[te] = true
					}
					comp++
				}
			}
		}
		if rootChildren >= 2 {
			res.Articulation[root] = true
		}
	}
	res.CompCount = int(comp)
	return res
}

// Bridges returns the edge ids of all bridges.
func (b BiCC) Bridges() []int32 {
	var out []int32
	for eid, isB := range b.Bridge {
		if isB {
			out = append(out, int32(eid))
		}
	}
	return out
}

// ArticulationPoints returns the vertex ids of all articulation points.
func (b BiCC) ArticulationPoints() []int32 {
	var out []int32
	for v, is := range b.Articulation {
		if is {
			out = append(out, int32(v))
		}
	}
	return out
}
