package components

import (
	"math"

	"snap/internal/graph"
	"snap/internal/par"
)

// MST is a minimum spanning forest.
type MST struct {
	// EdgeIDs are the ids of the chosen forest edges.
	EdgeIDs []int32
	// TotalWeight is the sum of chosen edge weights.
	TotalWeight float64
}

// BoruvkaMST computes a minimum spanning forest with parallel Borůvka
// iterations: each round finds, in parallel, the lightest incident edge
// of every current component (ties broken by edge id for determinism),
// then contracts the chosen edges with a union-find. Small-world graphs
// need only O(log n) rounds. Unweighted graphs yield an arbitrary
// (deterministic) spanning forest of weight = #edges chosen.
func BoruvkaMST(g *graph.Graph, workers int) MST {
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	uf := NewUnionFind(n)
	var chosen []int32
	var total float64

	endpoints := g.EdgeEndpoints()

	for {
		// best[rep] = lightest edge leaving that component this round.
		best := make(map[int32]mstCand)
		// Compute per-worker candidate maps, then merge. (On small
		// graphs one worker wins; on big graphs maps stay private
		// until the cheap merge.)
		results := make([]map[int32]mstCand, workers)
		par.ForChunkedN(len(endpoints), workers, func(w, lo, hi int) {
			local := make(map[int32]mstCand)
			for i := lo; i < hi; i++ {
				e := endpoints[i]
				ru, rv := uf.findRO(e.U), uf.findRO(e.V)
				if ru == rv {
					continue
				}
				wgt := e.W
				if !g.Weighted() {
					wgt = 1
				}
				c := mstCand{w: wgt, eid: int32(i), u: ru, v: rv}
				for _, r := range [2]int32{ru, rv} {
					if cur, ok := local[r]; !ok || less(c, cur) {
						local[r] = c
					}
				}
			}
			results[w] = local
		})
		for _, local := range results {
			for r, c := range local {
				if cur, ok := best[r]; !ok || less(c, cur) {
					best[r] = c
				}
			}
		}
		if len(best) == 0 {
			break
		}
		merged := 0
		for _, c := range best {
			if uf.Union(c.u, c.v) {
				chosen = append(chosen, c.eid)
				total += c.w
				merged++
			}
		}
		if merged == 0 {
			break
		}
	}
	return MST{EdgeIDs: chosen, TotalWeight: total}
}

// mstCand is a candidate lightest edge for one component in a Borůvka
// round: weight, edge id, and the two component representatives.
type mstCand struct {
	w    float64
	eid  int32
	u, v int32
}

func less(a, b mstCand) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	return a.eid < b.eid
}

// findRO is Find without path mutation, safe for concurrent readers
// while no Union is in flight.
func (u *UnionFind) findRO(v int32) int32 {
	for u.parent[v] != v {
		v = u.parent[v]
	}
	return v
}

// PrimMST is the serial reference MST (lazy Prim over a binary heap),
// used to validate BoruvkaMST: both must produce forests of identical
// total weight on any graph with distinct weights, and identical weight
// on ties as well (weight, not edge set, is the invariant).
func PrimMST(g *graph.Graph) MST {
	n := g.NumVertices()
	inTree := make([]bool, n)
	var chosen []int32
	var total float64
	h := &edgeHeap{}
	for root := int32(0); int(root) < n; root++ {
		if inTree[root] {
			continue
		}
		inTree[root] = true
		pushArcs(g, root, inTree, h)
		for h.len() > 0 {
			it := h.pop()
			if inTree[it.to] {
				continue
			}
			inTree[it.to] = true
			chosen = append(chosen, it.eid)
			total += it.w
			pushArcs(g, it.to, inTree, h)
		}
	}
	return MST{EdgeIDs: chosen, TotalWeight: total}
}

func pushArcs(g *graph.Graph, v int32, inTree []bool, h *edgeHeap) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	for a := lo; a < hi; a++ {
		u := g.Adj[a]
		if inTree[u] {
			continue
		}
		w := g.ArcWeight(a)
		if !g.Weighted() {
			w = 1
		}
		h.push(heapItem{w: w, eid: g.EID[a], to: u})
	}
}

type heapItem struct {
	w   float64
	eid int32
	to  int32
}

// edgeHeap is a minimal binary min-heap on (w, eid).
type edgeHeap struct{ items []heapItem }

func (h *edgeHeap) len() int { return len(h.items) }

func (h *edgeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.lessAt(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *edgeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.lessAt(l, small) {
			small = l
		}
		if r < last && h.lessAt(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

func (h *edgeHeap) lessAt(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.w != b.w {
		return a.w < b.w
	}
	return a.eid < b.eid
}

// SpanningForest returns a BFS spanning forest as parent edge ids
// (-1 at roots and unreached-impossible positions).
func SpanningForest(g *graph.Graph) []int32 {
	n := g.NumVertices()
	parentEdge := make([]int32, n)
	visited := make([]bool, n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	queue := make([]int32, 0, 256)
	for root := int32(0); int(root) < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				u := g.Adj[a]
				if !visited[u] {
					visited[u] = true
					parentEdge[u] = g.EID[a]
					queue = append(queue, u)
				}
			}
		}
	}
	return parentEdge
}

// ForestWeight sums the weights of the edges named by ids.
func ForestWeight(g *graph.Graph, ids []int32) float64 {
	if len(ids) == 0 {
		return 0
	}
	endpoints := g.EdgeEndpoints()
	var s float64
	for _, id := range ids {
		w := endpoints[id].W
		if !g.Weighted() {
			w = 1
		}
		s += w
	}
	if math.IsNaN(s) {
		return 0
	}
	return s
}
