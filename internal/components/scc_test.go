package components

import (
	"testing"
	"testing/quick"

	"snap/internal/generate"
	"snap/internal/graph"
)

func digraph(t *testing.T, n int, arcs [][2]int32) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(arcs))
	for i, a := range arcs {
		edges[i] = graph.Edge{U: a[0], V: a[1]}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSCCTwoCyclesAndBridgeArc(t *testing.T) {
	// Cycle {0,1,2} -> cycle {3,4}; plus isolated 5.
	g := digraph(t, 6, [][2]int32{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3},
		{3, 4}, {4, 3},
	})
	scc := StronglyConnected(g)
	if scc.Count != 3 {
		t.Fatalf("count = %d, want 3", scc.Count)
	}
	if scc.Comp[0] != scc.Comp[1] || scc.Comp[1] != scc.Comp[2] {
		t.Fatal("first cycle split")
	}
	if scc.Comp[3] != scc.Comp[4] {
		t.Fatal("second cycle split")
	}
	if scc.Comp[0] == scc.Comp[3] || scc.Comp[0] == scc.Comp[5] {
		t.Fatal("distinct SCCs merged")
	}
	// Tarjan emits sinks first: {3,4} is downstream of {0,1,2}.
	if !(scc.Comp[3] < scc.Comp[0]) {
		t.Fatalf("reverse topological order violated: %v", scc.Comp)
	}
}

func TestSCCDirectedPathIsAllSingletons(t *testing.T) {
	g := digraph(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	scc := StronglyConnected(g)
	if scc.Count != 5 {
		t.Fatalf("count = %d, want 5", scc.Count)
	}
}

func TestSCCDirectedCycleIsOne(t *testing.T) {
	g := digraph(t, 6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	scc := StronglyConnected(g)
	if scc.Count != 1 {
		t.Fatalf("count = %d, want 1", scc.Count)
	}
}

// sccOracle: u,v strongly connected iff v reachable from u AND u from v.
func sccOracle(g *graph.Graph) [][]bool {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for s := int32(0); int(s) < n; s++ {
		r := make([]bool, n)
		queue := []int32{s}
		r[s] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				u := g.Adj[a]
				if !r[u] {
					r[u] = true
					queue = append(queue, u)
				}
			}
		}
		reach[s] = r
	}
	return reach
}

func TestQuickSCCMatchesReachabilityOracle(t *testing.T) {
	check := func(raw []uint16) bool {
		n := 20
		var edges []graph.Edge
		for i := 0; i+1 < len(raw) && i < 80; i += 2 {
			u := int32(raw[i] % uint16(n))
			v := int32(raw[i+1] % uint16(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
		g, err := graph.Build(n, edges, graph.BuildOptions{Directed: true})
		if err != nil {
			return false
		}
		scc := StronglyConnected(g)
		reach := sccOracle(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := scc.Comp[u] == scc.Comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCondensationIsDAG(t *testing.T) {
	g := digraph(t, 6, [][2]int32{
		{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 5}, {5, 4},
	})
	scc := StronglyConnected(g)
	dag := Condensation(g, scc)
	if dag.NumVertices() != scc.Count {
		t.Fatalf("condensation size %d", dag.NumVertices())
	}
	// A DAG has all-singleton SCCs.
	inner := StronglyConnected(dag)
	if inner.Count != dag.NumVertices() {
		t.Fatal("condensation contains a cycle")
	}
}

func TestSCCOnUndirectedEqualsConnected(t *testing.T) {
	g := generate.ErdosRenyi(100, 150, 5)
	want := Connected(g, nil)
	got := StronglyConnected(g)
	if !sameLabeling(want, got) {
		t.Fatalf("undirected SCC differs from CC: %d vs %d", got.Count, want.Count)
	}
}
