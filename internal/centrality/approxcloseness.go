package centrality

import (
	"math/rand"

	"snap/internal/bfs"
	"snap/internal/graph"
	"snap/internal/par"
)

// ApproxCloseness estimates closeness centrality for every vertex with
// the Eppstein–Wang sampling scheme: k BFS traversals from random
// pivots give, for each vertex v, an unbiased estimate of its average
// distance avg(v) ≈ (n/(n−1)·k) Σ_i d(p_i, v); closeness is the
// reciprocal of the estimated total distance. With k = Θ(log n / ε²)
// the estimate is within εΔ of the truth with high probability.
// Vertices not reached by any pivot get score 0.
func ApproxCloseness(g *graph.Graph, samples int, seed int64, workers int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if samples <= 0 {
		samples = 32
	}
	if samples > n {
		samples = n
	}
	if workers <= 0 {
		workers = par.Workers()
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	pivots := make([]int32, samples)
	for i := range pivots {
		pivots[i] = int32(perm[i])
	}
	// Per-worker accumulators (the coarse-grained O(p·n) trade-off, as
	// in coarse-grained betweenness): each worker folds its pivots'
	// distance vectors into private arrays with no serialization, and
	// the p partial sums are merged once at the end. Buffers are
	// allocated lazily so only workers that actually run pay O(n).
	type pivotAcc struct {
		totals []float64
		counts []int32
	}
	accs := make([]pivotAcc, workers)
	bfs.MultiSourceWorkspace(g, pivots, -1, workers, func(w, _ int, ws *bfs.Workspace) {
		a := &accs[w]
		if a.totals == nil {
			a.totals = make([]float64, n)
			a.counts = make([]int32, n)
		}
		for _, v := range ws.Order() {
			a.totals[v] += float64(ws.Dist(v))
			a.counts[v]++
		}
	})
	totals := make([]float64, n)
	counts := make([]int32, n)
	for _, a := range accs {
		if a.totals == nil {
			continue
		}
		for v := 0; v < n; v++ {
			totals[v] += a.totals[v]
			counts[v] += a.counts[v]
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if counts[v] == 0 || totals[v] == 0 {
			continue
		}
		// Scale the sampled distance sum to the full vertex set.
		est := totals[v] * float64(n) / float64(counts[v])
		out[v] = 1 / est
	}
	return out
}
