package centrality

import (
	"snap/internal/graph"
	"snap/internal/sketch"
)

// ApproxCloseness estimates closeness centrality for every vertex with
// the Eppstein–Wang sampling scheme. It is a thin compatibility
// wrapper over sketch.Closeness, which owns the kernel (per-worker
// distance accumulators over pooled BFS traversals) and the Hoeffding
// sample-size machinery; callers who want the error/confidence
// contract should use the sketch package directly. samples <= 0 keeps
// this entry point's historical default of 32 pivots; seed 0 now means
// the repo-wide deterministic default (sketch.DefaultSeed), and any
// nonzero seed reproduces the pivot sequence this function has always
// drawn. Vertices not reached by any pivot get score 0.
func ApproxCloseness(g *graph.Graph, samples int, seed int64, workers int) []float64 {
	if g.NumVertices() == 0 {
		return nil
	}
	if samples <= 0 {
		samples = 32
	}
	r := sketch.Closeness(g, sketch.ClosenessOptions{
		Samples: samples,
		Seed:    seed,
		Workers: workers,
	})
	return r.Scores
}
