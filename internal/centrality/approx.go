package centrality

import (
	"math/rand"

	"snap/internal/graph"
	"snap/internal/par"
)

// ApproxOptions configures adaptive-sampling approximate betweenness.
type ApproxOptions struct {
	// SampleFraction is the fraction of vertices sampled as traversal
	// sources when the adaptive test does not stop earlier. The paper
	// reports <20% error on the top-1% entities with 5% sampling;
	// 0 selects 0.05.
	SampleFraction float64
	// MinSamples is the floor on source samples (default 8). Small
	// graphs below this are computed exactly.
	MinSamples int
	// Alpha is the adaptive-stopping multiplier: sampling stops early
	// once the running maximum accumulated dependency exceeds
	// Alpha * n (Bader et al. use cutoffs of this form for
	// high-centrality entities). 0 selects 5.
	Alpha float64
	// BatchSize is the number of sources drawn between adaptive-stop
	// tests (default 4).
	BatchSize int
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive restricts traversal to edges with Alive[eid] == true.
	Alive []bool
	// Seed makes source sampling deterministic.
	Seed int64
	// ComputeVertex/ComputeEdge select accumulation targets (both
	// default true when both false).
	ComputeVertex bool
	ComputeEdge   bool
}

func (o *ApproxOptions) fill(n int) {
	if o.SampleFraction <= 0 {
		o.SampleFraction = 0.05
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.Alpha <= 0 {
		o.Alpha = 5
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.Workers <= 0 {
		o.Workers = par.Workers()
	}
	if !o.ComputeVertex && !o.ComputeEdge {
		o.ComputeVertex = true
		o.ComputeEdge = true
	}
}

// ApproxBetweenness estimates betweenness centrality by adaptive source
// sampling (Bader, Kintali, Madduri & Mihail, WAW 2007): traversal
// sources are drawn uniformly at random in batches; after each batch
// the running maximum dependency is tested against Alpha*n, and
// sampling stops as soon as the estimate of the high-centrality
// entities is stable, or when SampleFraction*n sources have been used.
// Scores are extrapolated to the exact scale (multiplied by
// n/samples), so they are directly comparable with Betweenness output.
func ApproxBetweenness(g *graph.Graph, opt ApproxOptions) Scores {
	n := g.NumVertices()
	opt.fill(n)
	budget := int(opt.SampleFraction * float64(n))
	if budget < opt.MinSamples {
		budget = opt.MinSamples
	}
	if budget >= n {
		// Cheaper to be exact.
		return Betweenness(g, BetweennessOptions{
			Workers:       opt.Workers,
			Alive:         opt.Alive,
			ComputeVertex: opt.ComputeVertex,
			ComputeEdge:   opt.ComputeEdge,
		})
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(n) // sample without replacement

	out := Scores{}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, g.NumEdges())
	}
	used := 0
	threshold := opt.Alpha * float64(n)
	// The adaptive-stop statistic is the maximum accumulated dependency
	// so far. Dependencies only grow as batches accumulate, so the
	// maximum is maintained incrementally while folding each batch in —
	// no per-batch rescan of the full score arrays.
	mx := 0.0
	for used < budget {
		batch := opt.BatchSize
		if used+batch > budget {
			batch = budget - used
		}
		sources := make([]int32, batch)
		for i := 0; i < batch; i++ {
			sources[i] = int32(perm[used+i])
		}
		part := Betweenness(g, BetweennessOptions{
			Workers:       opt.Workers,
			Alive:         opt.Alive,
			ComputeVertex: opt.ComputeVertex,
			ComputeEdge:   opt.ComputeEdge,
			Sources:       sources,
		})
		for i, v := range part.Vertex {
			if v != 0 {
				out.Vertex[i] += v
				if out.Vertex[i] > mx {
					mx = out.Vertex[i]
				}
			}
		}
		for i, v := range part.Edge {
			if v != 0 {
				out.Edge[i] += v
				if out.Edge[i] > mx {
					mx = out.Edge[i]
				}
			}
		}
		used += batch
		if used >= opt.MinSamples && mx >= threshold {
			break
		}
	}
	out.Sources = used
	ScaleSampled(out.Vertex, n, used)
	ScaleSampled(out.Edge, n, used)
	return out
}

// ApproxVertexBetweenness estimates the betweenness of a single vertex
// of interest using the original adaptive formulation: sample sources
// until the dependency accumulated on that vertex exceeds Alpha*n,
// then return (n/samples) * accumulated dependency.
func ApproxVertexBetweenness(g *graph.Graph, v int32, opt ApproxOptions) (score float64, samples int) {
	n := g.NumVertices()
	opt.fill(n)
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(n)
	threshold := opt.Alpha * float64(n)
	st := acquireBrandesState(n)
	defer releaseBrandesState(st)
	acc := make([]float64, n)
	budget := n // the adaptive test is the primary stop; exactness the fallback
	used := 0
	for used < budget {
		s := int32(perm[used])
		st.run(g, s, opt.Alive, acc, nil)
		used++
		if used >= opt.MinSamples && acc[v] >= threshold {
			break
		}
	}
	score = acc[v] * float64(n) / float64(used)
	if !g.Directed() {
		score /= 2
	}
	return score, used
}
