package centrality

import (
	"testing"

	"snap/internal/generate"
	"snap/internal/sketch"
)

// TestApproxClosenessMatchesSketch pins that the compatibility wrapper
// is bitwise-identical to the sketch kernel it delegates to, including
// the historical 32-pivot default for samples <= 0.
func TestApproxClosenessMatchesSketch(t *testing.T) {
	g := generate.RMAT(600, 2400, generate.DefaultRMAT(), 5)
	got := ApproxCloseness(g, 48, 7, 2)
	want := sketch.Closeness(g, sketch.ClosenessOptions{Samples: 48, Seed: 7, Workers: 2})
	for v := range want.Scores {
		if got[v] != want.Scores[v] {
			t.Fatalf("wrapper diverges from sketch at vertex %d: %v vs %v", v, got[v], want.Scores[v])
		}
	}
	def := ApproxCloseness(g, 0, 7, 0)
	want32 := sketch.Closeness(g, sketch.ClosenessOptions{Samples: 32, Seed: 7})
	for v := range want32.Scores {
		if def[v] != want32.Scores[v] {
			t.Fatalf("samples<=0 default is not 32 pivots (vertex %d)", v)
		}
	}
}
