// Package centrality implements SNAP's centrality kernels: degree and
// closeness centrality, exact betweenness centrality (Brandes'
// algorithm) for vertices and edges in both coarse-grained (parallel
// over sources, O(p(m+n)) memory) and fine-grained (parallel within a
// traversal, O(m+n) memory) forms, and the adaptive-sampling
// approximate betweenness of Bader, Kintali, Madduri & Mihail (WAW
// 2007) that powers the pBD community detection algorithm.
package centrality

import (
	"math"
	"sync/atomic"
	"unsafe"

	"snap/internal/frontier"
	"snap/internal/graph"
	"snap/internal/par"
)

// Scores holds betweenness centrality results. Undirected scores follow
// the convention of counting each (s, t) pair once (s < t); i.e. raw
// accumulated dependencies are halved for undirected graphs.
type Scores struct {
	// Vertex betweenness, length n. Nil if not requested.
	Vertex []float64
	// Edge betweenness indexed by edge id, length m. Nil if not
	// requested.
	Edge []float64
	// Sources is the number of source traversals accumulated (n for
	// exact computation, the sample count for sampled runs).
	Sources int
}

// BetweennessOptions configures betweenness computation.
type BetweennessOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive restricts traversal to edges with Alive[eid] == true.
	Alive []bool
	// ComputeVertex/ComputeEdge select which scores to accumulate.
	// Both default to true when both are false.
	ComputeVertex bool
	ComputeEdge   bool
	// Sources, when non-nil, restricts traversals to these source
	// vertices (sampled approximation). Scores are NOT rescaled; use
	// ScaleSampled to extrapolate.
	Sources []int32
	// FineGrained parallelizes within each traversal (O(m+n) memory)
	// instead of across traversals (O(p(m+n)) memory).
	FineGrained bool
}

// Betweenness computes exact (or source-sampled) betweenness
// centrality on an unweighted graph via Brandes' dependency
// accumulation.
func Betweenness(g *graph.Graph, opt BetweennessOptions) Scores {
	if !opt.ComputeVertex && !opt.ComputeEdge {
		opt.ComputeVertex = true
		opt.ComputeEdge = true
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	sources := opt.Sources
	if sources == nil {
		n := g.NumVertices()
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	if opt.FineGrained {
		return betweennessFine(g, opt, sources, workers)
	}
	return betweennessCoarse(g, opt, sources, workers)
}

// betweennessCoarse distributes whole traversals across workers, each
// with private accumulators — the paper's coarse-grained strategy with
// O(p(m+n)) space.
func betweennessCoarse(g *graph.Graph, opt BetweennessOptions, sources []int32, workers int) Scores {
	n := g.NumVertices()
	m := g.NumEdges()
	type acc struct {
		vertex []float64
		edge   []float64
	}
	accs := make([]acc, workers)
	par.ForChunkedN(len(sources), workers, func(w, lo, hi int) {
		st := acquireBrandesState(n)
		a := acc{}
		if opt.ComputeVertex {
			a.vertex = make([]float64, n)
		}
		if opt.ComputeEdge {
			a.edge = make([]float64, m)
		}
		for i := lo; i < hi; i++ {
			st.run(g, sources[i], opt.Alive, a.vertex, a.edge)
		}
		releaseBrandesState(st)
		accs[w] = a
	})
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	for _, a := range accs {
		for i, v := range a.vertex {
			out.Vertex[i] += v
		}
		for i, v := range a.edge {
			out.Edge[i] += v
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

func halve(xs []float64) {
	for i := range xs {
		xs[i] /= 2
	}
}

// brandesState is the per-worker scratch of one Brandes traversal. The
// forward BFS phase lives in a shared frontier engine (epoch-stamped
// distances, O(1) reset); sigma/delta maintain a clean-between-runs
// invariant — every entry is 0 whenever no run is in progress — so a
// run resets nothing up front and instead sparsely restores exactly the
// vertices it touched (the engine's visitation order) before
// returning: O(touched) per source instead of wholesale O(n)
// re-zeroing.
type brandesState struct {
	eng   *frontier.Engine
	sigma []float64
	delta []float64
}

// brandesPool amortizes Brandes scratch across calls: the batched
// sampling loop of ApproxBetweenness re-acquires states every batch
// and gets the previous batch's allocations back.
var brandesPool = par.NewPool(func() *brandesState { return &brandesState{} })

// acquireBrandesState returns a pooled state sized for n vertices,
// satisfying the clean invariant. Release with releaseBrandesState.
func acquireBrandesState(n int) *brandesState {
	st := brandesPool.Get()
	st.resize(n)
	return st
}

func releaseBrandesState(st *brandesState) { brandesPool.Put(st) }

func (st *brandesState) resize(n int) {
	if st.eng == nil {
		st.eng = frontier.NewEngine(n)
	} else {
		st.eng.Resize(n)
	}
	if cap(st.sigma) < n || cap(st.delta) < n {
		st.sigma = make([]float64, n)
		st.delta = make([]float64, n)
	} else {
		// Shrinks and in-cap grows keep the clean invariant: every
		// entry ever touched by a run was restored on that run's exit,
		// and never-touched capacity is zero from allocation.
		st.sigma = st.sigma[:n]
		st.delta = st.delta[:n]
	}
}

// run performs one source traversal and accumulates dependencies into
// vertexAcc and/or edgeAcc (either may be nil). The forward BFS phase
// is the shared frontier engine's serial run; path counts are then
// accumulated by one push sweep over the visitation order. Distances
// are read through the engine's raw array, which is safe here: every
// alive-arc neighbor of a reached vertex is itself reached, so no
// stale-epoch entry is ever consulted.
func (st *brandesState) run(g *graph.Graph, s int32, alive []bool, vertexAcc, edgeAcc []float64) {
	eng, sigma, delta := st.eng, st.sigma, st.delta
	eng.Run(g, s, alive, -1)
	order := eng.Order()
	dist := eng.DistData()
	sigma[s] = 1
	for _, v := range order {
		sv := sigma[v]
		dv := dist[v]
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if dist[u] == dv+1 {
				sigma[u] += sv
			}
		}
	}
	// Dependency accumulation in reverse BFS order. Predecessors of w
	// are found by rescanning w's adjacency (SNAP's space optimization
	// for small-world graphs instead of storing predecessor lists).
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		lo, hi := g.Offsets[w], g.Offsets[w+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			v := g.Adj[a]
			if dist[v] == dist[w]-1 {
				c := sigma[v] * coeff
				delta[v] += c
				if edgeAcc != nil {
					edgeAcc[g.EID[a]] += c
				}
			}
		}
		if vertexAcc != nil {
			vertexAcc[w] += delta[w]
		}
	}
	// Restore the clean invariant sparsely: only vertices in the
	// visitation order carry sigma/delta state (the engine's distances
	// reset themselves by epoch).
	for _, v := range order {
		sigma[v] = 0
		delta[v] = 0
	}
}

// betweennessFine runs traversals one at a time but parallelizes the
// level-synchronous forward and backward sweeps — the O(m+n)-memory
// strategy for graphs too large for per-worker accumulators.
func betweennessFine(g *graph.Graph, opt BetweennessOptions, sources []int32, workers int) Scores {
	n := g.NumVertices()
	m := g.NumEdges()
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	// sigma/delta follow the same clean-between-sources invariant as
	// brandesState: initialized densely once, then restored sparsely
	// after each source over exactly the visited vertices. The forward
	// BFS — frontier bookkeeping, CAS claiming, and per-level windows —
	// is entirely the shared engine's parallel top-down run; reading
	// its raw distance array is safe because every alive-arc neighbor
	// of a reached vertex is itself reached (no stale-epoch entry is
	// consulted).
	sigma := make([]float64, n)
	delta := make([]float64, n)
	eng := frontier.AcquireEngine(n)
	defer frontier.ReleaseEngine(eng)
	fopt := frontier.Options{Workers: workers, Alive: opt.Alive, MaxDepth: -1}

	for _, s := range sources {
		eng.RunOptions(g, s, fopt)
		dist := eng.DistData()
		sigma[s] = 1
		// Sigma accumulation level by level: each vertex pulls from its
		// predecessors, so no atomics are needed — u is owned by
		// exactly one worker, and the previous level is settled.
		for d := int32(1); d < int32(eng.NumLevels()); d++ {
			level := eng.Level(d)
			par.ForChunkedN(len(level), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var acc float64
					alo, ahi := g.Offsets[u], g.Offsets[u+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						v := g.Adj[a]
						if dist[v] == d-1 {
							acc += sigma[v]
						}
					}
					sigma[u] = acc
				}
			})
		}
		// Backward sweep, one level at a time; delta of deeper levels
		// is final when a level is processed, and within a level each
		// w is owned by one worker. Accumulation into predecessors'
		// delta and into edge scores uses atomic float adds.
		for li := int32(eng.NumLevels()) - 1; li > 0; li-- {
			level := eng.Level(li)
			par.ForChunkedN(len(level), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					w := level[i]
					coeff := (1 + delta[w]) / sigma[w]
					alo, ahi := g.Offsets[w], g.Offsets[w+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						v := g.Adj[a]
						if dist[v] == dist[w]-1 {
							c := sigma[v] * coeff
							atomicAddFloat64(&delta[v], c)
							if out.Edge != nil {
								atomicAddFloat64(&out.Edge[g.EID[a]], c)
							}
						}
					}
					if out.Vertex != nil {
						out.Vertex[w] += delta[w]
					}
				}
			})
		}
		// Restore the clean invariant sparsely: the engine's order
		// holds exactly the vertices this source's traversal touched.
		for _, v := range eng.Order() {
			sigma[v] = 0
			delta[v] = 0
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

// atomicAddFloat64 adds delta to *addr with a CAS loop over the bit
// pattern. The stdlib has no atomic float64 add.
func atomicAddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, nw) {
			return
		}
	}
}

// ScaleSampled extrapolates sampled betweenness scores to the exact
// scale: each accumulated dependency is multiplied by n/samples.
func ScaleSampled(scores []float64, n, samples int) {
	if samples == 0 {
		return
	}
	f := float64(n) / float64(samples)
	for i := range scores {
		scores[i] *= f
	}
}

// MaxEdge returns the edge id with the largest score among alive edges
// (alive == nil means all), breaking ties toward the smaller id.
// Returns -1 when no edge is alive.
func MaxEdge(scores []float64, alive []bool) int32 {
	best := int32(-1)
	bv := math.Inf(-1)
	for id, s := range scores {
		if alive != nil && !alive[id] {
			continue
		}
		if s > bv {
			best, bv = int32(id), s
		}
	}
	return best
}

// TopKEdges returns the ids of the k highest-scoring alive edges in
// descending score order (ties toward smaller id). Used by pBD to keep
// a candidate set of known high-centrality edges.
func TopKEdges(scores []float64, alive []bool, k int) []int32 {
	type se struct {
		id int32
		s  float64
	}
	var heap []se // min-heap of size <= k on (s, -id)
	lessHeap := func(a, b se) bool {
		if a.s != b.s {
			return a.s < b.s
		}
		return a.id > b.id
	}
	push := func(x se) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !lessHeap(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	popRoot := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && lessHeap(heap[l], heap[small]) {
				small = l
			}
			if r < last && lessHeap(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for id, s := range scores {
		if alive != nil && !alive[id] {
			continue
		}
		x := se{id: int32(id), s: s}
		if len(heap) < k {
			push(x)
		} else if k > 0 && lessHeap(heap[0], x) {
			popRoot()
			push(x)
		}
	}
	out := make([]int32, len(heap))
	// Extract ascending, then reverse.
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0].id
		popRoot()
	}
	return out
}
