// Package centrality implements SNAP's centrality kernels: degree and
// closeness centrality, exact betweenness centrality (Brandes'
// algorithm) for vertices and edges in both coarse-grained (parallel
// over sources, O(p(m+n)) memory) and fine-grained (parallel within a
// traversal, O(m+n) memory) forms, and the adaptive-sampling
// approximate betweenness of Bader, Kintali, Madduri & Mihail (WAW
// 2007) that powers the pBD community detection algorithm.
package centrality

import (
	"math"
	"sync/atomic"
	"unsafe"

	"snap/internal/graph"
	"snap/internal/par"
)

// Scores holds betweenness centrality results. Undirected scores follow
// the convention of counting each (s, t) pair once (s < t); i.e. raw
// accumulated dependencies are halved for undirected graphs.
type Scores struct {
	// Vertex betweenness, length n. Nil if not requested.
	Vertex []float64
	// Edge betweenness indexed by edge id, length m. Nil if not
	// requested.
	Edge []float64
	// Sources is the number of source traversals accumulated (n for
	// exact computation, the sample count for sampled runs).
	Sources int
}

// BetweennessOptions configures betweenness computation.
type BetweennessOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Alive restricts traversal to edges with Alive[eid] == true.
	Alive []bool
	// ComputeVertex/ComputeEdge select which scores to accumulate.
	// Both default to true when both are false.
	ComputeVertex bool
	ComputeEdge   bool
	// Sources, when non-nil, restricts traversals to these source
	// vertices (sampled approximation). Scores are NOT rescaled; use
	// ScaleSampled to extrapolate.
	Sources []int32
	// FineGrained parallelizes within each traversal (O(m+n) memory)
	// instead of across traversals (O(p(m+n)) memory).
	FineGrained bool
}

// Betweenness computes exact (or source-sampled) betweenness
// centrality on an unweighted graph via Brandes' dependency
// accumulation.
func Betweenness(g *graph.Graph, opt BetweennessOptions) Scores {
	if !opt.ComputeVertex && !opt.ComputeEdge {
		opt.ComputeVertex = true
		opt.ComputeEdge = true
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	sources := opt.Sources
	if sources == nil {
		n := g.NumVertices()
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	if opt.FineGrained {
		return betweennessFine(g, opt, sources, workers)
	}
	return betweennessCoarse(g, opt, sources, workers)
}

// betweennessCoarse distributes whole traversals across workers, each
// with private accumulators — the paper's coarse-grained strategy with
// O(p(m+n)) space.
func betweennessCoarse(g *graph.Graph, opt BetweennessOptions, sources []int32, workers int) Scores {
	n := g.NumVertices()
	m := g.NumEdges()
	type acc struct {
		vertex []float64
		edge   []float64
	}
	accs := make([]acc, workers)
	par.ForChunkedN(len(sources), workers, func(w, lo, hi int) {
		st := acquireBrandesState(n)
		a := acc{}
		if opt.ComputeVertex {
			a.vertex = make([]float64, n)
		}
		if opt.ComputeEdge {
			a.edge = make([]float64, m)
		}
		for i := lo; i < hi; i++ {
			st.run(g, sources[i], opt.Alive, a.vertex, a.edge)
		}
		releaseBrandesState(st)
		accs[w] = a
	})
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	for _, a := range accs {
		for i, v := range a.vertex {
			out.Vertex[i] += v
		}
		for i, v := range a.edge {
			out.Edge[i] += v
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

func halve(xs []float64) {
	for i := range xs {
		xs[i] /= 2
	}
}

// brandesState is the per-worker scratch of one Brandes traversal. It
// maintains a clean-between-runs invariant — every dist entry is -1 and
// every sigma/delta entry is 0 whenever no run is in progress — so a
// run resets nothing up front and instead sparsely restores exactly the
// vertices it touched (listed in order) before returning: O(touched)
// per source instead of the former wholesale O(n) re-zeroing.
type brandesState struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []int32 // vertices in BFS visitation order
}

// brandesPool amortizes Brandes scratch across calls: the batched
// sampling loop of ApproxBetweenness re-acquires states every batch
// and gets the previous batch's allocations back.
var brandesPool = par.NewPool(func() *brandesState { return &brandesState{} })

// acquireBrandesState returns a pooled state sized for n vertices,
// satisfying the clean invariant. Release with releaseBrandesState.
func acquireBrandesState(n int) *brandesState {
	st := brandesPool.Get()
	st.resize(n)
	return st
}

func releaseBrandesState(st *brandesState) { brandesPool.Put(st) }

func (st *brandesState) resize(n int) {
	if cap(st.dist) < n || cap(st.sigma) < n || cap(st.delta) < n {
		st.dist = make([]int32, n)
		// Initialize through the full capacity (make may round the
		// allocation up), so a later in-place grow still sees -1.
		full := st.dist[:cap(st.dist)]
		for i := range full {
			full[i] = -1
		}
		st.sigma = make([]float64, n)
		st.delta = make([]float64, n)
	} else {
		// Shrinks and in-cap grows keep the clean invariant: every
		// entry ever touched by a run was restored on that run's exit,
		// and never-touched capacity is -1 (dist) or zero (sigma/delta)
		// from allocation.
		st.dist = st.dist[:n]
		st.sigma = st.sigma[:n]
		st.delta = st.delta[:n]
	}
	if st.order == nil {
		st.order = make([]int32, 0, 256)
	}
	st.order = st.order[:0]
}

// run performs one source traversal and accumulates dependencies into
// vertexAcc and/or edgeAcc (either may be nil).
func (st *brandesState) run(g *graph.Graph, s int32, alive []bool, vertexAcc, edgeAcc []float64) {
	dist, sigma, delta := st.dist, st.sigma, st.delta
	order := st.order[:0]
	dist[s] = 0
	sigma[s] = 1
	order = append(order, s)
	for head := 0; head < len(order); head++ {
		v := order[head]
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				order = append(order, u)
			}
			if dist[u] == dist[v]+1 {
				sigma[u] += sigma[v]
			}
		}
	}
	st.order = order
	// Dependency accumulation in reverse BFS order. Predecessors of w
	// are found by rescanning w's adjacency (SNAP's space optimization
	// for small-world graphs instead of storing predecessor lists).
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		lo, hi := g.Offsets[w], g.Offsets[w+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			v := g.Adj[a]
			if dist[v] == dist[w]-1 {
				c := sigma[v] * coeff
				delta[v] += c
				if edgeAcc != nil {
					edgeAcc[g.EID[a]] += c
				}
			}
		}
		if vertexAcc != nil {
			vertexAcc[w] += delta[w]
		}
	}
	// Restore the clean invariant sparsely: only vertices in the
	// visitation order carry traversal state.
	for _, v := range order {
		dist[v] = -1
		sigma[v] = 0
		delta[v] = 0
	}
}

// betweennessFine runs traversals one at a time but parallelizes the
// level-synchronous forward and backward sweeps — the O(m+n)-memory
// strategy for graphs too large for per-worker accumulators.
func betweennessFine(g *graph.Graph, opt BetweennessOptions, sources []int32, workers int) Scores {
	n := g.NumVertices()
	m := g.NumEdges()
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	// dist/sigma/delta follow the same clean-between-sources invariant
	// as brandesState: initialized densely once, then restored sparsely
	// after each source over exactly the visited vertices.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma := make([]float64, n)
	delta := make([]float64, n)
	// BFS levels are recorded flat — level li occupies
	// flat[offs[li]:offs[li+1]] — so recording a level is an amortized
	// copy into one reused buffer instead of a fresh slice per level.
	flat := make([]int32, 0, n)
	offs := make([]int, 1, 64)
	frontier := make([]int32, 0, 256)
	nexts := make([][]int32, workers)
	for i := range nexts {
		nexts[i] = make([]int32, 0, 256)
	}

	for _, s := range sources {
		flat = flat[:0]
		offs = offs[:1]
		dist[s] = 0
		sigma[s] = 1
		frontier = append(frontier[:0], s)
		d := int32(0)
		for len(frontier) > 0 {
			flat = append(flat, frontier...)
			offs = append(offs, len(flat))
			d++
			for i := range nexts {
				nexts[i] = nexts[i][:0]
			}
			// Phase 1: claim next-level vertices with CAS on dist.
			par.ForChunkedN(len(frontier), workers, func(w, lo, hi int) {
				next := nexts[w]
				for i := lo; i < hi; i++ {
					v := frontier[i]
					alo, ahi := g.Offsets[v], g.Offsets[v+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						u := g.Adj[a]
						if atomic.CompareAndSwapInt32(&dist[u], -1, d) {
							next = append(next, u)
						}
					}
				}
				nexts[w] = next
			})
			frontier = frontier[:0]
			for _, nx := range nexts {
				frontier = append(frontier, nx...)
			}
			// Phase 2: accumulate sigma over the settled level. Each
			// next-level vertex pulls from its predecessors, so no
			// atomics are needed: u is owned by exactly one worker.
			par.ForChunkedN(len(frontier), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					u := frontier[i]
					var s float64
					alo, ahi := g.Offsets[u], g.Offsets[u+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						v := g.Adj[a]
						if dist[v] == d-1 {
							s += sigma[v]
						}
					}
					sigma[u] = s
				}
			})
		}
		// Backward sweep, one level at a time; delta of deeper levels
		// is final when a level is processed, and within a level each
		// w is owned by one worker. Accumulation into predecessors'
		// delta and into edge scores uses atomic float adds.
		for li := len(offs) - 2; li > 0; li-- {
			level := flat[offs[li]:offs[li+1]]
			par.ForChunkedN(len(level), workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					w := level[i]
					coeff := (1 + delta[w]) / sigma[w]
					alo, ahi := g.Offsets[w], g.Offsets[w+1]
					for a := alo; a < ahi; a++ {
						if opt.Alive != nil && !opt.Alive[g.EID[a]] {
							continue
						}
						v := g.Adj[a]
						if dist[v] == dist[w]-1 {
							c := sigma[v] * coeff
							atomicAddFloat64(&delta[v], c)
							if out.Edge != nil {
								atomicAddFloat64(&out.Edge[g.EID[a]], c)
							}
						}
					}
					if out.Vertex != nil {
						out.Vertex[w] += delta[w]
					}
				}
			})
		}
		// Restore the clean invariant sparsely: flat holds exactly the
		// vertices this source's traversal touched.
		for _, v := range flat {
			dist[v] = -1
			sigma[v] = 0
			delta[v] = 0
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

// atomicAddFloat64 adds delta to *addr with a CAS loop over the bit
// pattern. The stdlib has no atomic float64 add.
func atomicAddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, nw) {
			return
		}
	}
}

// ScaleSampled extrapolates sampled betweenness scores to the exact
// scale: each accumulated dependency is multiplied by n/samples.
func ScaleSampled(scores []float64, n, samples int) {
	if samples == 0 {
		return
	}
	f := float64(n) / float64(samples)
	for i := range scores {
		scores[i] *= f
	}
}

// MaxEdge returns the edge id with the largest score among alive edges
// (alive == nil means all), breaking ties toward the smaller id.
// Returns -1 when no edge is alive.
func MaxEdge(scores []float64, alive []bool) int32 {
	best := int32(-1)
	bv := math.Inf(-1)
	for id, s := range scores {
		if alive != nil && !alive[id] {
			continue
		}
		if s > bv {
			best, bv = int32(id), s
		}
	}
	return best
}

// TopKEdges returns the ids of the k highest-scoring alive edges in
// descending score order (ties toward smaller id). Used by pBD to keep
// a candidate set of known high-centrality edges.
func TopKEdges(scores []float64, alive []bool, k int) []int32 {
	type se struct {
		id int32
		s  float64
	}
	var heap []se // min-heap of size <= k on (s, -id)
	lessHeap := func(a, b se) bool {
		if a.s != b.s {
			return a.s < b.s
		}
		return a.id > b.id
	}
	push := func(x se) {
		heap = append(heap, x)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !lessHeap(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	popRoot := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && lessHeap(heap[l], heap[small]) {
				small = l
			}
			if r < last && lessHeap(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for id, s := range scores {
		if alive != nil && !alive[id] {
			continue
		}
		x := se{id: int32(id), s: s}
		if len(heap) < k {
			push(x)
		} else if k > 0 && lessHeap(heap[0], x) {
			popRoot()
			push(x)
		}
	}
	out := make([]int32, len(heap))
	// Extract ascending, then reverse.
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0].id
		popRoot()
	}
	return out
}
