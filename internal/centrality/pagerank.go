package centrality

import (
	"math"

	"snap/internal/graph"
	"snap/internal/par"
)

// PageRankOptions configures the PageRank power iteration.
type PageRankOptions struct {
	// Damping is the random-surfer continuation probability
	// (default 0.85).
	Damping float64
	// Tolerance is the L1 convergence threshold (default 1e-8).
	Tolerance float64
	// MaxIterations bounds the iteration count (default 200).
	MaxIterations int
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
}

func (o *PageRankOptions) fill() {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Workers <= 0 {
		o.Workers = par.Workers()
	}
}

// PageRank computes the stationary random-surfer distribution with
// parallel power iteration (the classic index for "identification of
// influential entities" the paper's introduction motivates). For
// undirected graphs each arc is followed both ways; dangling vertices
// redistribute uniformly. Scores sum to 1.
func PageRank(g *graph.Graph, opt PageRankOptions) []float64 {
	opt.fill()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	return pageRankPower(g, rank, opt)
}

// pageRankPower runs the undirected power iteration to convergence
// from an arbitrary starting vector (rank is consumed; the returned
// slice holds the result). The warm-start entry behind PageRank,
// PageRankFrom, and the residual-push polish: iteration count depends
// only on the distance between the start vector and the fixpoint, so a
// vector carried over from the previous snapshot epoch converges in a
// handful of sweeps. Deterministic at any worker count (each vertex's
// sum is accumulated serially in arc order).
func pageRankPower(g *graph.Graph, rank []float64, opt PageRankOptions) []float64 {
	n := g.NumVertices()
	next := make([]float64, n)
	// share[v] = rank[v]/outdeg(v), computed per iteration.
	share := make([]float64, n)
	for it := 0; it < opt.MaxIterations; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			d := g.Degree(int32(v))
			if d == 0 {
				dangling += rank[v]
				share[v] = 0
			} else {
				share[v] = rank[v] / float64(d)
			}
		}
		base := (1-opt.Damping)*1 + opt.Damping*dangling
		base /= float64(n)
		// Pull formulation: each vertex sums its in-neighbors' shares.
		// For undirected CSR the adjacency is symmetric, so neighbors
		// are exactly the in-neighbors; for directed graphs we walk
		// the reverse arcs via the same CSR (approximation documented
		// below is avoided by building the transpose once).
		par.ForChunkedN(n, opt.Workers, func(_, lo, hi int) {
			for vi := lo; vi < hi; vi++ {
				var s float64
				v := int32(vi)
				alo, ahi := g.Offsets[v], g.Offsets[v+1]
				for a := alo; a < ahi; a++ {
					s += share[g.Adj[a]]
				}
				next[vi] = base + opt.Damping*s
			}
		})
		var delta float64
		for v := 0; v < n; v++ {
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < opt.Tolerance {
			break
		}
	}
	return rank
}

// PageRankDirected computes PageRank on a directed graph by building
// the transpose adjacency once so that mass flows along arc direction.
func PageRankDirected(g *graph.Graph, opt PageRankOptions) []float64 {
	if !g.Directed() {
		return PageRank(g, opt)
	}
	opt.fill()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	// Build transpose: in-neighbors of every vertex.
	indeg := make([]int64, n)
	for _, u := range g.Adj {
		indeg[u]++
	}
	offsets := par.PrefixSum(indeg)
	radj := make([]int32, len(g.Adj))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for v := int32(0); int(v) < n; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			radj[cursor[u]] = v
			cursor[u]++
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	share := make([]float64, n)
	for it := 0; it < opt.MaxIterations; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			d := g.Degree(int32(v)) // out-degree
			if d == 0 {
				dangling += rank[v]
				share[v] = 0
			} else {
				share[v] = rank[v] / float64(d)
			}
		}
		base := ((1 - opt.Damping) + opt.Damping*dangling) / float64(n)
		par.ForChunkedN(n, opt.Workers, func(_, lo, hi int) {
			for vi := lo; vi < hi; vi++ {
				var s float64
				for a := offsets[vi]; a < offsets[vi+1]; a++ {
					s += share[radj[a]]
				}
				next[vi] = base + opt.Damping*s
			}
		})
		var delta float64
		for v := 0; v < n; v++ {
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < opt.Tolerance {
			break
		}
	}
	return rank
}

// EigenvectorCentrality computes the principal-eigenvector centrality
// of an undirected graph by power iteration (normalized to max 1).
// Returns nil when the iteration cannot make progress (empty graph).
func EigenvectorCentrality(g *graph.Graph, maxIter int, tol float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-9
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for it := 0; it < maxIter; it++ {
		for v := 0; v < n; v++ {
			var s float64
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for a := lo; a < hi; a++ {
				s += x[g.Adj[a]]
			}
			y[v] = s
		}
		mx := 0.0
		for _, v := range y {
			if v > mx {
				mx = v
			}
		}
		if mx == 0 {
			return x // edgeless graph: uniform
		}
		var delta float64
		for i := range y {
			y[i] /= mx
			delta += math.Abs(y[i] - x[i])
		}
		x, y = y, x
		if delta < tol {
			break
		}
	}
	return x
}
