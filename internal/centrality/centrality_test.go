package centrality

import (
	"math"
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func buildGraph(t *testing.T, n int, pairs [][2]int32) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1]}
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: BC(v) for interior v counts pairs it separates.
	g := buildGraph(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	s := Betweenness(g, BetweennessOptions{ComputeVertex: true, ComputeEdge: true})
	want := []float64{0, 3, 4, 3, 0}
	for v, w := range want {
		if !approxEq(s.Vertex[v], w) {
			t.Fatalf("BC(%d) = %g, want %g", v, s.Vertex[v], w)
		}
	}
	// Edge betweenness of middle edge (1,2): pairs {0,1}x{2,3,4} = 6... plus
	// all shortest paths crossing it: (0,2),(0,3),(0,4),(1,2),(1,3),(1,4) = 6.
	if eb := s.Edge[g.EdgeIDOf(1, 2)]; !approxEq(eb, 6) {
		t.Fatalf("EBC(1,2) = %g, want 6", eb)
	}
	if eb := s.Edge[g.EdgeIDOf(0, 1)]; !approxEq(eb, 4) {
		t.Fatalf("EBC(0,1) = %g, want 4", eb)
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and 4 leaves: BC(0) = C(4,2) = 6.
	g := buildGraph(t, 5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	s := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	if !approxEq(s.Vertex[0], 6) {
		t.Fatalf("BC(center) = %g, want 6", s.Vertex[0])
	}
	for v := 1; v < 5; v++ {
		if !approxEq(s.Vertex[v], 0) {
			t.Fatalf("BC(leaf %d) = %g, want 0", v, s.Vertex[v])
		}
	}
}

func TestBetweennessCycleSplitsPaths(t *testing.T) {
	// On C4, opposite vertices are joined by two shortest paths, each
	// interior vertex carrying 1/2.
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	s := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	for v := 0; v < 4; v++ {
		if !approxEq(s.Vertex[v], 0.5) {
			t.Fatalf("BC(%d) = %g, want 0.5", v, s.Vertex[v])
		}
	}
}

func TestFineGrainedMatchesCoarse(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := generate.RMAT(200, 800, generate.DefaultRMAT(), int64(trial))
		coarse := Betweenness(g, BetweennessOptions{ComputeVertex: true, ComputeEdge: true})
		fine := Betweenness(g, BetweennessOptions{
			ComputeVertex: true, ComputeEdge: true, FineGrained: true, Workers: 4,
		})
		for v := range coarse.Vertex {
			if math.Abs(coarse.Vertex[v]-fine.Vertex[v]) > 1e-6 {
				t.Fatalf("trial %d: vertex %d: coarse %g fine %g",
					trial, v, coarse.Vertex[v], fine.Vertex[v])
			}
		}
		for e := range coarse.Edge {
			if math.Abs(coarse.Edge[e]-fine.Edge[e]) > 1e-6 {
				t.Fatalf("trial %d: edge %d: coarse %g fine %g",
					trial, e, coarse.Edge[e], fine.Edge[e])
			}
		}
	}
}

func TestBetweennessWorkerCountInvariance(t *testing.T) {
	g := generate.RMAT(150, 600, generate.DefaultRMAT(), 9)
	base := Betweenness(g, BetweennessOptions{Workers: 1, ComputeVertex: true})
	for _, w := range []int{2, 4, 8} {
		s := Betweenness(g, BetweennessOptions{Workers: w, ComputeVertex: true})
		for v := range base.Vertex {
			if math.Abs(base.Vertex[v]-s.Vertex[v]) > 1e-6 {
				t.Fatalf("workers=%d: BC(%d) drifted: %g vs %g", w, v, s.Vertex[v], base.Vertex[v])
			}
		}
	}
}

func TestBetweennessAliveMask(t *testing.T) {
	// Square with a diagonal; killing the diagonal reroutes paths.
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	alive := make([]bool, g.NumEdges())
	for i := range alive {
		alive[i] = true
	}
	alive[g.EdgeIDOf(0, 2)] = false
	s := Betweenness(g, BetweennessOptions{Alive: alive, ComputeVertex: true})
	// With the diagonal dead this is C4: all BC = 0.5.
	for v := 0; v < 4; v++ {
		if !approxEq(s.Vertex[v], 0.5) {
			t.Fatalf("BC(%d) = %g, want 0.5 on masked C4", v, s.Vertex[v])
		}
	}
}

func TestSampledBetweennessScaling(t *testing.T) {
	g := generate.RMAT(300, 1500, generate.DefaultRMAT(), 3)
	exact := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	// Sampling all sources must equal the exact result exactly.
	all := make([]int32, g.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	sampled := Betweenness(g, BetweennessOptions{ComputeVertex: true, Sources: all})
	for v := range exact.Vertex {
		if math.Abs(exact.Vertex[v]-sampled.Vertex[v]) > 1e-6 {
			t.Fatalf("full-source sampling drifted at %d", v)
		}
	}
}

func TestApproxBetweennessRanksHubFirst(t *testing.T) {
	// Barbell: two K8 cliques joined through a 3-vertex path. The path
	// middle must be the top-ranked vertex under approximation.
	var pairs [][2]int32
	for i := int32(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			pairs = append(pairs, [2]int32{i, j})
			pairs = append(pairs, [2]int32{11 + i, 11 + j})
		}
	}
	pairs = append(pairs, [2]int32{7, 8}, [2]int32{8, 9}, [2]int32{9, 10}, [2]int32{10, 11})
	g := buildGraph(t, 19, pairs)
	s := ApproxBetweenness(g, ApproxOptions{SampleFraction: 0.5, Seed: 1, ComputeVertex: true})
	top := TopKVertices(s.Vertex, 3)
	for _, v := range top {
		if v < 7 || v > 11 {
			t.Fatalf("top-3 approx BC contains clique vertex %d: %v", v, top)
		}
	}
}

func TestApproxBetweennessExactWhenBudgetExceedsN(t *testing.T) {
	g := generate.RMAT(60, 240, generate.DefaultRMAT(), 5)
	exact := Betweenness(g, BetweennessOptions{ComputeVertex: true, ComputeEdge: true})
	appr := ApproxBetweenness(g, ApproxOptions{SampleFraction: 2.0, Seed: 2})
	for v := range exact.Vertex {
		if math.Abs(exact.Vertex[v]-appr.Vertex[v]) > 1e-6 {
			t.Fatal("approx with full budget should be exact")
		}
	}
}

func TestApproxVertexBetweenness(t *testing.T) {
	// Path graph: middle vertex has the highest BC; the adaptive
	// estimator must get within a reasonable factor.
	g := buildGraph(t, 9, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
	})
	exact := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	got, samples := ApproxVertexBetweenness(g, 4, ApproxOptions{Seed: 3, MinSamples: 4})
	if samples <= 0 {
		t.Fatal("no samples taken")
	}
	if got < exact.Vertex[4]*0.3 || got > exact.Vertex[4]*3 {
		t.Fatalf("approx BC(4) = %g, exact %g: out of band", got, exact.Vertex[4])
	}
}

func TestMaxEdgeAndTopK(t *testing.T) {
	scores := []float64{1, 9, 3, 9, 2}
	if e := MaxEdge(scores, nil); e != 1 {
		t.Fatalf("MaxEdge = %d, want 1 (tie to smaller id)", e)
	}
	alive := []bool{true, false, true, true, true}
	if e := MaxEdge(scores, alive); e != 3 {
		t.Fatalf("masked MaxEdge = %d, want 3", e)
	}
	top := TopKEdges(scores, nil, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopKEdges = %v, want [1 3 2]", top)
	}
	if e := MaxEdge(nil, nil); e != -1 {
		t.Fatalf("empty MaxEdge = %d", e)
	}
}

func TestDegreeAndCloseness(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	dc := DegreeCentrality(g)
	if dc[0] != 3 || dc[1] != 1 {
		t.Fatalf("degree centrality wrong: %v", dc)
	}
	cc := Closeness(g, ClosenessOptions{})
	// Center: distances 1+1+1 = 3 -> 1/3. Leaf: 1+2+2 = 5 -> 1/5.
	if !approxEq(cc[0], 1.0/3) || !approxEq(cc[1], 0.2) {
		t.Fatalf("closeness wrong: %v", cc)
	}
}

func TestClosenessSources(t *testing.T) {
	g := buildGraph(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	cc := Closeness(g, ClosenessOptions{Sources: []int32{1}})
	if cc[0] != 0 || cc[2] != 0 {
		t.Fatal("non-source entries should be 0")
	}
	if !approxEq(cc[1], 1.0/4) {
		t.Fatalf("closeness(1) = %g", cc[1])
	}
}

func TestTopKVertices(t *testing.T) {
	scores := []float64{0.5, 2, 2, 1}
	top := TopKVertices(scores, 2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopKVertices = %v", top)
	}
}

// topKReference is the original O(n·k) partial selection sort, kept as
// the oracle pinning the ordering contract: descending score, ties
// toward the smaller index.
func topKReference(scores []float64, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			si, sj := scores[idx[j]], scores[idx[best]]
			if si > sj || (si == sj && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// The bounded-heap TopKVertices must reproduce the selection-sort
// order exactly, including tie-breaks toward the smaller index, on
// heavily tied inputs.
func TestTopKVerticesTieBreakMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(5)) // few distinct values => many ties
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 10} {
			got := TopKVertices(scores, k)
			want := topKReference(scores, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: order %v, want %v (scores %v)", n, k, got, want, scores)
				}
			}
		}
	}
}

// All-ties input: output must be the first k indices in ascending order.
func TestTopKVerticesAllTied(t *testing.T) {
	scores := make([]float64, 20)
	got := TopKVertices(scores, 7)
	for i := range got {
		if got[i] != int32(i) {
			t.Fatalf("all-tied TopK = %v, want ascending prefix", got)
		}
	}
}

func BenchmarkBetweennessCoarse(b *testing.B) {
	g := generate.RMAT(2000, 8000, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g, BetweennessOptions{ComputeVertex: true})
	}
}

func BenchmarkApproxBetweenness(b *testing.B) {
	g := generate.RMAT(2000, 8000, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxBetweenness(g, ApproxOptions{Seed: int64(i)})
	}
}
