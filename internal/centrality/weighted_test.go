package centrality

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestWeightedBetweennessUnitWeightsMatchBFS(t *testing.T) {
	// With all weights 1, weighted Brandes must equal the BFS variant.
	base := generate.RMAT(150, 600, generate.DefaultRMAT(), 2)
	edges := base.EdgeEndpoints()
	for i := range edges {
		edges[i].W = 1
	}
	g, _ := graph.Build(base.NumVertices(), edges, graph.BuildOptions{Weighted: true})
	want := Betweenness(base, BetweennessOptions{ComputeVertex: true, ComputeEdge: true})
	got := WeightedBetweenness(g, BetweennessOptions{ComputeVertex: true, ComputeEdge: true})
	for v := range want.Vertex {
		if math.Abs(want.Vertex[v]-got.Vertex[v]) > 1e-6 {
			t.Fatalf("vertex %d: %g vs %g", v, got.Vertex[v], want.Vertex[v])
		}
	}
	for e := range want.Edge {
		if math.Abs(want.Edge[e]-got.Edge[e]) > 1e-6 {
			t.Fatalf("edge %d: %g vs %g", e, got.Edge[e], want.Edge[e])
		}
	}
}

func TestWeightedBetweennessRespectsWeights(t *testing.T) {
	// Square 0-1-2-3 with heavy direct edge 0-2: all 0..2 traffic
	// takes the two-hop light paths, so the heavy edge carries nothing
	// beyond being dominated.
	g, _ := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
		{U: 2, V: 3, W: 1}, {U: 3, V: 0, W: 1},
		{U: 0, V: 2, W: 10},
	}, graph.BuildOptions{Weighted: true})
	s := WeightedBetweenness(g, BetweennessOptions{ComputeEdge: true})
	if s.Edge[g.EdgeIDOf(0, 2)] != 0 {
		t.Fatalf("dominated heavy edge has EBC %g, want 0", s.Edge[g.EdgeIDOf(0, 2)])
	}
	// Each light edge carries the pair of its endpoints plus half the
	// split opposite-corner traffic, all > 0.
	if s.Edge[g.EdgeIDOf(0, 1)] <= 0 {
		t.Fatal("light edge should carry traffic")
	}
}

func TestWeightedBetweennessTieSplitting(t *testing.T) {
	// Two equal-weight parallel two-hop routes: dependencies split.
	g, _ := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 3, W: 1},
		{U: 0, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}, graph.BuildOptions{Weighted: true})
	s := WeightedBetweenness(g, BetweennessOptions{ComputeVertex: true})
	if math.Abs(s.Vertex[1]-0.5) > 1e-9 || math.Abs(s.Vertex[2]-0.5) > 1e-9 {
		t.Fatalf("tie split wrong: %v", s.Vertex)
	}
}

func TestWeightedBetweennessFallbackUnweighted(t *testing.T) {
	g := generate.Ring(10)
	a := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	b := WeightedBetweenness(g, BetweennessOptions{ComputeVertex: true})
	for v := range a.Vertex {
		if a.Vertex[v] != b.Vertex[v] {
			t.Fatal("fallback mismatch")
		}
	}
}

// BenchmarkWeightedBetweennessRMAT measures weighted Brandes over a
// fixed source sample on a weighted RMAT instance (scale 11; exact
// weighted betweenness is O(sources * m log n)).
func BenchmarkWeightedBetweennessRMAT(b *testing.B) {
	n := 1 << 11
	g := generate.RandomWeights(generate.RMAT(n, 8*n, generate.DefaultRMAT(), 1), 10, 2)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * 29)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WeightedBetweenness(g, BetweennessOptions{Sources: sources})
	}
}
