package centrality

import (
	"math"

	"snap/internal/graph"
	"snap/internal/par"
)

// WeightedBetweenness computes exact betweenness centrality on a graph
// with positive edge weights, using Brandes' algorithm with Dijkstra
// traversals (the paper's path definitions sum edge weights; this is
// the weighted counterpart of the BFS-based kernel). Unweighted graphs
// fall back to the faster BFS variant. Coarse-grained parallel over
// sources with per-worker accumulators; traversal scratch comes from a
// shared pool and resets sparsely between sources, so a batch of
// sources pays O(touched) bookkeeping per traversal, not O(n).
func WeightedBetweenness(g *graph.Graph, opt BetweennessOptions) Scores {
	if !g.Weighted() {
		return Betweenness(g, opt)
	}
	if !opt.ComputeVertex && !opt.ComputeEdge {
		opt.ComputeVertex = true
		opt.ComputeEdge = true
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	sources := opt.Sources
	if sources == nil {
		n := g.NumVertices()
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	n := g.NumVertices()
	m := g.NumEdges()
	type acc struct {
		vertex []float64
		edge   []float64
	}
	accs := make([]acc, workers)
	par.ForChunkedN(len(sources), workers, func(w, lo, hi int) {
		st := acquireDijkstraBrandes(n)
		a := acc{}
		if opt.ComputeVertex {
			a.vertex = make([]float64, n)
		}
		if opt.ComputeEdge {
			a.edge = make([]float64, m)
		}
		for i := lo; i < hi; i++ {
			st.run(g, sources[i], opt.Alive, a.vertex, a.edge)
		}
		releaseDijkstraBrandes(st)
		accs[w] = a
	})
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	for _, a := range accs {
		for i, v := range a.vertex {
			out.Vertex[i] += v
		}
		for i, v := range a.edge {
			out.Edge[i] += v
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

// dijkstraBrandes is the per-worker state of one weighted traversal.
// Like brandesState, its vertex-indexed arrays keep a clean invariant
// between runs — dist +Inf, sigma/delta 0, done false — restored
// sparsely over the settle order on each run's exit, so acquiring a
// pooled state and running many sources does no O(n) re-initialization.
type dijkstraBrandes struct {
	dist  []float64 // clean: +Inf
	sigma []float64 // clean: 0
	delta []float64 // clean: 0
	done  []bool    // clean: false
	order []int32   // vertices in settle order (emptied per run)
	heap  []wbItem  // binary min-heap scratch (emptied per run)
}

// wbPool amortizes weighted-Brandes scratch across calls; the batched
// loops of WeightedBetweenness re-acquire per worker chunk and get the
// previous chunk's allocations back.
var wbPool = par.NewPool(func() *dijkstraBrandes { return &dijkstraBrandes{} })

// acquireDijkstraBrandes returns a pooled state sized for n vertices,
// satisfying the clean invariant. Release with releaseDijkstraBrandes.
func acquireDijkstraBrandes(n int) *dijkstraBrandes {
	st := wbPool.Get()
	st.resize(n)
	return st
}

func releaseDijkstraBrandes(st *dijkstraBrandes) { wbPool.Put(st) }

func (st *dijkstraBrandes) resize(n int) {
	if cap(st.dist) < n {
		// Fresh allocations are filled to capacity so later in-capacity
		// regrows stay clean; previously used entries were restored by
		// the run that touched them.
		st.dist = make([]float64, n)
		st.dist = st.dist[:cap(st.dist)]
		for i := range st.dist {
			st.dist[i] = math.Inf(1)
		}
		st.sigma = make([]float64, cap(st.dist))
		st.delta = make([]float64, cap(st.dist))
		st.done = make([]bool, cap(st.dist))
	}
	st.dist = st.dist[:n]
	st.sigma = st.sigma[:n]
	st.delta = st.delta[:n]
	st.done = st.done[:n]
}

// wbItem is one heap entry: a tentative distance and its vertex.
type wbItem struct {
	d float64
	v int32
}

// hpush/hpop are a hand-rolled binary min-heap on st.heap. The stdlib
// container/heap interface moves items through interface{} values and
// allocates on every Push; with one push per successful relaxation that
// dominated the allocation profile of WeightedBetweenness.
func (st *dijkstraBrandes) hpush(it wbItem) {
	h := append(st.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[i].d >= h[p].d {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	st.heap = h
}

func (st *dijkstraBrandes) hpop() wbItem {
	h := st.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h[l].d < h[small].d {
			small = l
		}
		if r < last && h[r].d < h[small].d {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	st.heap = h
	return top
}

const wbEps = 1e-12

func (st *dijkstraBrandes) run(g *graph.Graph, s int32, alive []bool, vertexAcc, edgeAcc []float64) {
	dist, sigma, delta := st.dist, st.sigma, st.delta
	order := st.order[:0]
	dist[s] = 0
	sigma[s] = 1
	st.heap = append(st.heap[:0], wbItem{d: 0, v: s})
	for len(st.heap) > 0 {
		it := st.hpop()
		v := it.v
		if st.done[v] {
			continue
		}
		st.done[v] = true
		order = append(order, v)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			nd := dist[v] + g.W[a]
			switch {
			case nd < dist[u]-wbEps:
				dist[u] = nd
				sigma[u] = sigma[v]
				st.hpush(wbItem{d: nd, v: u})
			case math.Abs(nd-dist[u]) <= wbEps:
				sigma[u] += sigma[v]
			}
		}
	}
	st.order = order
	// Dependency accumulation in reverse settle order; predecessors
	// are the neighbors v with dist[v] + w(v,w) == dist[w].
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		lo, hi := g.Offsets[w], g.Offsets[w+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			v := g.Adj[a]
			if math.Abs(dist[v]+g.W[a]-dist[w]) <= wbEps {
				c := sigma[v] * coeff
				delta[v] += c
				if edgeAcc != nil {
					edgeAcc[g.EID[a]] += c
				}
			}
		}
		if vertexAcc != nil {
			vertexAcc[w] += delta[w]
		}
	}
	// Restore the clean invariant sparsely: every vertex whose state was
	// written is settled (each relaxed vertex carries a heap entry, and
	// Dijkstra drains the heap), so the settle order covers them all.
	for _, v := range order {
		dist[v] = math.Inf(1)
		sigma[v] = 0
		delta[v] = 0
		st.done[v] = false
	}
}
