package centrality

import (
	"container/heap"
	"math"

	"snap/internal/graph"
	"snap/internal/par"
)

// WeightedBetweenness computes exact betweenness centrality on a graph
// with positive edge weights, using Brandes' algorithm with Dijkstra
// traversals (the paper's path definitions sum edge weights; this is
// the weighted counterpart of the BFS-based kernel). Unweighted graphs
// fall back to the faster BFS variant. Coarse-grained parallel over
// sources with per-worker accumulators.
func WeightedBetweenness(g *graph.Graph, opt BetweennessOptions) Scores {
	if !g.Weighted() {
		return Betweenness(g, opt)
	}
	if !opt.ComputeVertex && !opt.ComputeEdge {
		opt.ComputeVertex = true
		opt.ComputeEdge = true
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	sources := opt.Sources
	if sources == nil {
		n := g.NumVertices()
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	n := g.NumVertices()
	m := g.NumEdges()
	type acc struct {
		vertex []float64
		edge   []float64
	}
	accs := make([]acc, workers)
	par.ForChunkedN(len(sources), workers, func(w, lo, hi int) {
		st := newDijkstraBrandes(n)
		a := acc{}
		if opt.ComputeVertex {
			a.vertex = make([]float64, n)
		}
		if opt.ComputeEdge {
			a.edge = make([]float64, m)
		}
		for i := lo; i < hi; i++ {
			st.run(g, sources[i], opt.Alive, a.vertex, a.edge)
		}
		accs[w] = a
	})
	out := Scores{Sources: len(sources)}
	if opt.ComputeVertex {
		out.Vertex = make([]float64, n)
	}
	if opt.ComputeEdge {
		out.Edge = make([]float64, m)
	}
	for _, a := range accs {
		for i, v := range a.vertex {
			out.Vertex[i] += v
		}
		for i, v := range a.edge {
			out.Edge[i] += v
		}
	}
	if !g.Directed() {
		halve(out.Vertex)
		halve(out.Edge)
	}
	return out
}

// dijkstraBrandes is the per-worker state of one weighted traversal.
type dijkstraBrandes struct {
	dist  []float64
	sigma []float64
	delta []float64
	order []int32 // vertices in settle order
	done  []bool
}

func newDijkstraBrandes(n int) *dijkstraBrandes {
	return &dijkstraBrandes{
		dist:  make([]float64, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]int32, 0, n),
		done:  make([]bool, n),
	}
}

type wbItem struct {
	d float64
	v int32
}

type wbHeap []wbItem

func (h wbHeap) Len() int            { return len(h) }
func (h wbHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h wbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wbHeap) Push(x interface{}) { *h = append(*h, x.(wbItem)) }
func (h *wbHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

const wbEps = 1e-12

func (st *dijkstraBrandes) run(g *graph.Graph, s int32, alive []bool, vertexAcc, edgeAcc []float64) {
	dist, sigma, delta := st.dist, st.sigma, st.delta
	for i := range dist {
		dist[i] = math.Inf(1)
		sigma[i] = 0
		delta[i] = 0
		st.done[i] = false
	}
	order := st.order[:0]
	dist[s] = 0
	sigma[s] = 1
	h := &wbHeap{{d: 0, v: s}}
	for h.Len() > 0 {
		it := heap.Pop(h).(wbItem)
		v := it.v
		if st.done[v] {
			continue
		}
		st.done[v] = true
		order = append(order, v)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			u := g.Adj[a]
			nd := dist[v] + g.W[a]
			switch {
			case nd < dist[u]-wbEps:
				dist[u] = nd
				sigma[u] = sigma[v]
				heap.Push(h, wbItem{d: nd, v: u})
			case math.Abs(nd-dist[u]) <= wbEps:
				sigma[u] += sigma[v]
			}
		}
	}
	st.order = order
	// Dependency accumulation in reverse settle order; predecessors
	// are the neighbors v with dist[v] + w(v,w) == dist[w].
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		lo, hi := g.Offsets[w], g.Offsets[w+1]
		for a := lo; a < hi; a++ {
			if alive != nil && !alive[g.EID[a]] {
				continue
			}
			v := g.Adj[a]
			if math.Abs(dist[v]+g.W[a]-dist[w]) <= wbEps {
				c := sigma[v] * coeff
				delta[v] += c
				if edgeAcc != nil {
					edgeAcc[g.EID[a]] += c
				}
			}
		}
		if vertexAcc != nil {
			vertexAcc[w] += delta[w]
		}
	}
}
