package centrality

import (
	"math"
	"math/rand"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func perturb(t *testing.T, g *graph.Graph, rng *rand.Rand, nAdd, nDel int) (*graph.Graph, []int32) {
	t.Helper()
	n := int32(g.NumVertices())
	var add, del []graph.Edge
	for i := 0; i < nAdd; i++ {
		add = append(add, graph.Edge{U: rng.Int31n(n), V: rng.Int31n(n)})
	}
	ends := g.EdgeEndpoints()
	for i := 0; i < nDel && len(ends) > 0; i++ {
		del = append(del, ends[rng.Intn(len(ends))])
	}
	out, err := graph.MergeDelta(g, add, del)
	if err != nil {
		t.Fatal(err)
	}
	var seeds []int32
	for _, e := range append(append([]graph.Edge{}, add...), del...) {
		seeds = append(seeds, e.U, e.V)
	}
	return out, seeds
}

func TestPageRankDeltaMatchesFull(t *testing.T) {
	g := generate.RMAT(1<<11, 8<<11, generate.DefaultRMAT(), 5)
	opt := PageRankOptions{Tolerance: 1e-10}
	prev := PageRank(g, opt)
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 4; step++ {
		g2, seeds := perturb(t, g, rng, 40, 20)
		full := PageRank(g2, opt)
		inc := PageRankDelta(g2, prev, seeds, opt)
		if d := l1(inc, full); d > 1e-6 {
			t.Fatalf("step %d: L1(inc, full) = %g", step, d)
		}
		// Scores must be a distribution.
		var sum float64
		for _, v := range inc {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: sum = %g", step, sum)
		}
		g, prev = g2, inc
	}
}

func TestPageRankDeltaDeterministic(t *testing.T) {
	g := generate.ErdosRenyi(800, 3200, 3)
	opt := PageRankOptions{}
	prev := PageRank(g, opt)
	rng := rand.New(rand.NewSource(4))
	g2, seeds := perturb(t, g, rng, 25, 10)
	var ref []float64
	for _, w := range []int{1, 2, 3, 8} {
		o := opt
		o.Workers = w
		got := PageRankDelta(g2, prev, seeds, o)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: score[%d] differs: %g vs %g", w, i, got[i], ref[i])
			}
		}
	}
}

func TestPageRankDeltaFallbacks(t *testing.T) {
	g := generate.ErdosRenyi(300, 900, 7)
	opt := PageRankOptions{}
	full := PageRank(g, opt)

	// nil / wrong-length / degenerate prev fall back to a cold start.
	for _, prev := range [][]float64{nil, make([]float64, 10), make([]float64, 300)} {
		got := PageRankDelta(g, prev, []int32{1, 2}, opt)
		if d := l1(got, full); d > 1e-6 {
			t.Fatalf("fallback L1 = %g", d)
		}
	}

	// Directed graphs route to PageRankDirected.
	dg := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 0}},
		graph.BuildOptions{Directed: true})
	want := PageRankDirected(dg, opt)
	got := PageRankDelta(dg, want, []int32{0}, opt)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("directed fallback differs at %d", i)
		}
	}
}

func TestPageRankDeltaDanglingVertices(t *testing.T) {
	// Vertices 8..11 are isolated (dangling under the undirected kernel).
	var edges []graph.Edge
	for i := int32(0); i < 8; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % 8})
	}
	g := graph.MustBuild(12, edges, graph.BuildOptions{})
	opt := PageRankOptions{}
	prev := PageRank(g, opt)
	g2, err := graph.MergeDelta(g, []graph.Edge{{U: 8, V: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := PageRank(g2, opt)
	inc := PageRankDelta(g2, prev, []int32{8, 0}, opt)
	if d := l1(inc, full); d > 1e-6 {
		t.Fatalf("dangling L1 = %g", d)
	}
}

func TestPageRankFromWarmStart(t *testing.T) {
	g := generate.RMAT(1<<10, 8<<10, generate.DefaultRMAT(), 9)
	opt := PageRankOptions{}
	full := PageRank(g, opt)
	warm := PageRankFrom(g, full, opt)
	if d := l1(warm, full); d > 1e-8 {
		t.Fatalf("warm restart moved scores by %g", d)
	}
	if got := PageRankFrom(g, nil, opt); l1(got, full) > 1e-6 {
		t.Fatal("nil prev must fall back to cold start")
	}
}
