package centrality

import (
	"math"
	"sort"

	"snap/internal/graph"
)

// Incremental PageRank across snapshot epochs (internal/ingest). The
// stationary distribution of an updated graph is usually close to the
// previous epoch's: instead of restarting power iteration from the
// uniform vector, PageRankDelta first runs a Gauss–Southwell-style
// residual push that corrects the carried-over scores locally around
// the changed vertices, then polishes with the shared warm-start power
// iteration, which certifies the usual L1 tolerance. Work scales with
// the size and reach of the delta (bounded by an explicit arc budget),
// not with the iteration count of a cold start; when the delta touches
// a large fraction of the graph the method degrades gracefully into a
// warm power iteration, and callers with no usable previous vector
// fall back to PageRank outright.

// pushBudgetFactor bounds the residual-push phase to this multiple of
// the graph's arc count before handing off to the power-iteration
// polish; beyond that the push is doing a full recompute's work with
// worse constants.
const pushBudgetFactor = 2

// PageRankFrom computes PageRank warm-started from a previous score
// vector (renormalized defensively). Falls back to a cold start when
// prev is unusable. Directed graphs take the PageRankDirected path
// (cold: the transpose scatter makes warm residual bookkeeping
// pointless at our scales).
func PageRankFrom(g *graph.Graph, prev []float64, opt PageRankOptions) []float64 {
	if g.Directed() {
		return PageRankDirected(g, opt)
	}
	opt.fill()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := normalizedCopy(prev, n)
	if rank == nil {
		return PageRank(g, opt)
	}
	return pageRankSeidel(g, rank, opt)
}

// PageRankDelta computes PageRank on g incrementally from the previous
// epoch's scores, given the vertices whose adjacency changed between
// the epochs (both endpoints of every inserted or deleted edge).
// Scores converge to the same fixpoint as PageRank(g, opt) and satisfy
// the same L1 tolerance, certified by the trailing power-iteration
// polish. The push phase is serial and processes seeds in sorted
// order, so the result is deterministic for any worker count.
func PageRankDelta(g *graph.Graph, prev []float64, seeds []int32, opt PageRankOptions) []float64 {
	if g.Directed() {
		return PageRankDirected(g, opt)
	}
	opt.fill()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	x := normalizedCopy(prev, n)
	if x == nil {
		return PageRank(g, opt)
	}
	if len(seeds) > 0 {
		residualPush(g, x, seeds, opt)
	}
	return pageRankSeidel(g, x, opt)
}

// pageRankSeidel polishes a warm-start vector with in-place
// Gauss–Seidel sweeps: each vertex recomputes its score from the
// newest neighbor values within the sweep, which roughly halves the
// iteration count of the Jacobi power method for the same L1
// successive-sweep tolerance. The sweep is serial in vertex order, so
// the result is deterministic for any worker count. Dangling mass is
// lagged from the sweep start (the standard treatment); a final
// renormalization removes the O(tol) sum drift Gauss–Seidel incurs
// mid-sweep. Both solvers converge to the same fixpoint, so scores
// agree with PageRank(g, opt) to within the solver tolerance — the
// cold path keeps the Jacobi iteration so from-scratch results stay
// bit-identical across releases.
func pageRankSeidel(g *graph.Graph, rank []float64, opt PageRankOptions) []float64 {
	n := g.NumVertices()
	share := make([]float64, n)
	prev := make([]float64, n)
	lastDelta, lastRho := 0.0, 0.0
	sinceExtrap := 0
	for it := 0; it < opt.MaxIterations; it++ {
		copy(prev, rank)
		var dangling float64
		for v := 0; v < n; v++ {
			if deg := g.Offsets[v+1] - g.Offsets[v]; deg == 0 {
				dangling += rank[v]
				share[v] = 0
			} else {
				share[v] = rank[v] / float64(deg)
			}
		}
		base := ((1 - opt.Damping) + opt.Damping*dangling) / float64(n)
		var delta float64
		for vi := 0; vi < n; vi++ {
			lo, hi := g.Offsets[vi], g.Offsets[vi+1]
			nv := base
			if lo < hi {
				var s float64
				for a := lo; a < hi; a++ {
					s += share[g.Adj[a]]
				}
				nv += opt.Damping * s
				share[vi] = nv / float64(hi-lo)
			}
			delta += math.Abs(nv - rank[vi])
			rank[vi] = nv
		}
		if delta < opt.Tolerance {
			break
		}
		// Aitken extrapolation: once the per-sweep contraction ratio
		// ρ = Δ_k/Δ_{k-1} has stabilized, the error is dominated by a
		// single geometric mode, and x* ≈ x_k + (x_k − x_{k-1})·ρ/(1−ρ)
		// jumps it in one step. Gauss–Seidel remains contractive after
		// the jump, so a bad extrapolation only costs extra sweeps.
		sinceExtrap++
		if lastDelta > 0 {
			rho := delta / lastDelta
			if lastRho > 0 && sinceExtrap >= 3 &&
				rho > 0.5 && rho < 0.97 && math.Abs(rho-lastRho) < 0.02*rho {
				scale := rho / (1 - rho)
				for i := range rank {
					rank[i] += (rank[i] - prev[i]) * scale
				}
				sinceExtrap = 0
				lastDelta, lastRho = 0, 0
				continue
			}
			lastRho = rho
		}
		lastDelta = delta
	}
	var sum float64
	for _, v := range rank {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range rank {
			rank[i] *= inv
		}
	}
	return rank
}

// residualPush corrects x in place around the changed region: residuals
// r[v] = base + d·Σ_{u∈N(v)} x[u]/deg(u) − x[v] are materialized at the
// seed vertices and their neighbors, and then drained through a FIFO —
// applying r[v] to x[v] perturbs each neighbor's residual by
// d·r[v]/deg(v). Vertices re-enter the queue when their residual
// exceeds θ = tol/n, so a drained queue certifies ||r||₁ ≤ tol and the
// polish converges in a sweep or two. Vertices the spread reaches that
// were never materialized start from residual 0 — exact up to the
// previous epoch's own convergence tolerance, which the polish
// absorbs. The state is three dense O(n) arrays (float64 + two bools):
// cheap to allocate per call, and every queue operation is
// constant-time, so the push costs arcs-walked, not map traffic. The
// walk stops at an arc budget; whatever error remains is inside the
// polish's convergence basin.
func residualPush(g *graph.Graph, x []float64, seeds []int32, opt PageRankOptions) {
	residualPushBudget(g, x, seeds, opt, pushBudgetFactor)
}

func residualPushBudget(g *graph.Graph, x []float64, seeds []int32, opt PageRankOptions, factor float64) {
	n := g.NumVertices()
	d := opt.Damping
	var dangling float64
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] == g.Offsets[v] {
			dangling += x[v]
		}
	}
	base := ((1 - d) + d*dangling) / float64(n)
	theta := opt.Tolerance / float64(n)
	if theta <= 0 {
		theta = 1e-12
	}

	r := make([]float64, n)
	seen := make([]bool, n) // residual materialized during seeding
	inq := make([]bool, n)
	queue := make([]int32, 0, 4*len(seeds))

	resid := func(v int32) float64 {
		var s float64
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for a := lo; a < hi; a++ {
			u := g.Adj[a]
			if deg := g.Offsets[u+1] - g.Offsets[u]; deg > 0 {
				s += x[u] / float64(deg)
			}
		}
		return base + d*s - x[v]
	}
	touch := func(v int32) {
		if seen[v] {
			return
		}
		seen[v] = true
		if rv := resid(v); math.Abs(rv) > theta {
			r[v] = rv
			queue = append(queue, v)
			inq[v] = true
		}
	}
	// Frontier of interest: the seeds and their current neighbors, in
	// sorted unique seed order for determinism (adjacency is sorted).
	sorted := append([]int32(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, s := range sorted {
		if s < 0 || int(s) >= n || (i > 0 && sorted[i-1] == s) {
			continue
		}
		touch(s)
		lo, hi := g.Offsets[s], g.Offsets[s+1]
		for a := lo; a < hi; a++ {
			touch(g.Adj[a])
		}
	}

	budget := int64(factor * float64(g.NumArcs()))
	for len(queue) > 0 && budget > 0 {
		v := queue[0]
		queue = queue[1:]
		inq[v] = false
		rv := r[v]
		r[v] = 0
		if math.Abs(rv) <= theta {
			continue
		}
		x[v] += rv
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		deg := hi - lo
		if deg == 0 {
			continue
		}
		spread := d * rv / float64(deg)
		budget -= deg
		for a := lo; a < hi; a++ {
			w := g.Adj[a]
			r[w] += spread
			if !inq[w] && math.Abs(r[w]) > theta {
				queue = append(queue, w)
				inq[w] = true
			}
		}
	}
}

// normalizedCopy returns a fresh copy of prev scaled to sum 1, or nil
// when prev is the wrong length or has a non-positive / non-finite
// total — the signal to fall back to a cold start.
func normalizedCopy(prev []float64, n int) []float64 {
	if len(prev) != n {
		return nil
	}
	var sum float64
	for _, v := range prev {
		sum += v
	}
	if !(sum > 0) || math.IsInf(sum, 1) || math.IsNaN(sum) {
		return nil
	}
	out := make([]float64, n)
	inv := 1 / sum
	for i, v := range prev {
		out[i] = v * inv
	}
	return out
}
