package centrality

import (
	"math"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestPageRankSumsToOne(t *testing.T) {
	g := generate.RMAT(500, 2000, generate.DefaultRMAT(), 1)
	pr := PageRank(g, PageRankOptions{})
	var s float64
	for _, v := range pr {
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("PageRank sums to %g", s)
	}
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	g := generate.Ring(20)
	pr := PageRank(g, PageRankOptions{})
	for v := 1; v < 20; v++ {
		if math.Abs(pr[v]-pr[0]) > 1e-9 {
			t.Fatalf("ring PageRank not uniform: %g vs %g", pr[v], pr[0])
		}
	}
}

func TestPageRankStarCenterDominates(t *testing.T) {
	g, _ := graph.Build(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
	}, graph.BuildOptions{})
	pr := PageRank(g, PageRankOptions{})
	for v := 1; v < 5; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("star center should dominate: %v", pr)
		}
	}
	// Analytical check for the undirected star with damping d:
	// leaves all equal, center = (1-d)/n + d*(sum of leaf shares).
	if math.Abs(pr[1]-pr[4]) > 1e-12 {
		t.Fatal("leaves should tie")
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Isolated vertex: dangling redistribution keeps the sum at 1.
	g, _ := graph.Build(3, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{})
	pr := PageRank(g, PageRankOptions{})
	var s float64
	for _, v := range pr {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("sum with dangling vertex = %g", s)
	}
}

func TestPageRankDirectedChain(t *testing.T) {
	// 0 -> 1 -> 2: rank must accumulate downstream.
	g, _ := graph.Build(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
		graph.BuildOptions{Directed: true})
	pr := PageRankDirected(g, PageRankOptions{})
	if !(pr[2] > pr[1] && pr[1] > pr[0]) {
		t.Fatalf("directed chain ranks wrong: %v", pr)
	}
	var s float64
	for _, v := range pr {
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("directed sum = %g", s)
	}
}

func TestPageRankDirectedFallsBackUndirected(t *testing.T) {
	g := generate.Ring(10)
	a := PageRank(g, PageRankOptions{})
	b := PageRankDirected(g, PageRankOptions{})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("undirected fallback mismatch")
		}
	}
}

func TestEigenvectorCentrality(t *testing.T) {
	// Barbell-ish: the K5 vertices outrank the pendant path.
	var edges []graph.Edge
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	edges = append(edges, graph.Edge{U: 4, V: 5}, graph.Edge{U: 5, V: 6})
	g, _ := graph.Build(7, edges, graph.BuildOptions{})
	ec := EigenvectorCentrality(g, 0, 0)
	if ec[6] >= ec[0] {
		t.Fatalf("pendant outranks clique: %v", ec)
	}
	mx := 0.0
	for _, v := range ec {
		if v > mx {
			mx = v
		}
	}
	if math.Abs(mx-1) > 1e-9 {
		t.Fatalf("not normalized to max 1: %g", mx)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := generate.RMAT(1<<14, 1<<16, generate.DefaultRMAT(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, PageRankOptions{})
	}
}
