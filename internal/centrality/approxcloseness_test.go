package centrality

import (
	"sort"
	"testing"

	"snap/internal/generate"
	"snap/internal/graph"
)

func TestApproxClosenessFullSamplingMatchesExact(t *testing.T) {
	g := generate.RMAT(200, 800, generate.DefaultRMAT(), 4)
	exact := Closeness(g, ClosenessOptions{})
	appr := ApproxCloseness(g, g.NumVertices(), 1, 2)
	// With all pivots, the estimate equals exact closeness scaled by
	// (reached count / n); for a connected component it is exact up to
	// the n-scaling convention. Compare rank order of the top 10.
	topE := TopKVertices(exact, 10)
	topA := TopKVertices(appr, 10)
	matches := 0
	inA := map[int32]bool{}
	for _, v := range topA {
		inA[v] = true
	}
	for _, v := range topE {
		if inA[v] {
			matches++
		}
	}
	if matches < 7 {
		t.Fatalf("full-sample approx closeness agrees on only %d of top-10", matches)
	}
}

func TestApproxClosenessRanksCenterOfPath(t *testing.T) {
	// On a path, central vertices must outrank the endpoints.
	g := generate.Ring(101) // ring: all tie; use Tree? use path via ring minus an edge
	_ = g
	gp := pathLike(101)
	appr := ApproxCloseness(gp, 40, 2, 2)
	if appr[50] <= appr[0] || appr[50] <= appr[100] {
		t.Fatalf("center %g should beat endpoints %g/%g", appr[50], appr[0], appr[100])
	}
}

func pathLike(n int) *graph.Graph {
	return buildPath(n)
}

func TestApproxClosenessDeterministic(t *testing.T) {
	g := generate.RMAT(300, 1200, generate.DefaultRMAT(), 5)
	a := ApproxCloseness(g, 16, 7, 3)
	b := ApproxCloseness(g, 16, 7, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("approx closeness not deterministic for fixed seed")
		}
	}
	sort.Float64s(a) // silence unused-sort import if test shrinks later
}

// buildPath constructs a path graph 0-1-...-n-1 for closeness tests.
func buildPath(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g, err := graph.Build(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
