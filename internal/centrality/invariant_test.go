package centrality

import (
	"math"
	"testing"
	"testing/quick"

	"snap/internal/bfs"
	"snap/internal/components"
	"snap/internal/generate"
)

// On a tree, the edge betweenness of every edge equals s*(n-s), where s
// and n-s are the sizes of the two components its removal creates —
// a closed form that validates the whole Brandes pipeline.
func TestTreeEdgeBetweennessClosedForm(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := generate.Tree(60, int64(trial))
		n := g.NumVertices()
		scores := Betweenness(g, BetweennessOptions{ComputeEdge: true}).Edge
		for eid := 0; eid < g.NumEdges(); eid++ {
			alive := make([]bool, g.NumEdges())
			for i := range alive {
				alive[i] = i != eid
			}
			lab := components.Connected(g, alive)
			sizes := lab.Sizes()
			if len(sizes) != 2 {
				t.Fatalf("tree edge removal must give 2 components, got %d", len(sizes))
			}
			want := float64(sizes[0]) * float64(sizes[1])
			if math.Abs(scores[eid]-want) > 1e-9 {
				t.Fatalf("trial %d edge %d: EBC = %g, want %g (s=%d, n-s=%d)",
					trial, eid, scores[eid], want, sizes[0], n-sizes[0])
			}
		}
	}
}

// Total vertex betweenness equals the number of "interior visits" of
// all shortest paths: sum_v BC(v) = sum_{s!=t} (d(s,t) - 1) * [s,t
// connected] / (2 for undirected double counting handled internally).
func TestBetweennessSumIdentity(t *testing.T) {
	check := func(seed int64) bool {
		g := generate.ErdosRenyi(40, 80, seed)
		scores := Betweenness(g, BetweennessOptions{ComputeVertex: true}).Vertex
		var total float64
		for _, s := range scores {
			total += s
		}
		// Count sum over unordered connected pairs of (d(s,t) − 1).
		var want float64
		for s := int32(0); int(s) < g.NumVertices(); s++ {
			r := bfs.Serial(g, s, nil)
			for v, d := range r.Dist {
				if d > 0 && int32(v) > s {
					want += float64(d - 1)
				}
			}
		}
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(func(x uint8) bool { return check(int64(x)) },
		&quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Closeness on vertex-transitive graphs is constant.
func TestClosenessSymmetryOnRing(t *testing.T) {
	g := generate.Ring(17)
	cc := Closeness(g, ClosenessOptions{})
	for v := 1; v < len(cc); v++ {
		if math.Abs(cc[v]-cc[0]) > 1e-12 {
			t.Fatalf("ring closeness not uniform: %g vs %g", cc[v], cc[0])
		}
	}
}
