package centrality

import (
	"snap/internal/bfs"
	"snap/internal/graph"
	"snap/internal/par"
)

// DegreeCentrality returns the degree of every vertex as a float64
// score (the simplest local centrality index).
func DegreeCentrality(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = float64(g.Degree(int32(v)))
	}
	return out
}

// ClosenessOptions configures closeness centrality.
type ClosenessOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Sources, when non-nil, computes closeness only for these
	// vertices (the remaining entries are 0).
	Sources []int32
}

// Closeness computes closeness centrality CC(v) = 1 / sum_u d(v, u) on
// an unweighted graph, running one BFS per requested vertex with
// coarse-grained parallelism. Unreachable pairs are skipped (the
// standard convention for disconnected graphs); isolated vertices get
// score 0.
func Closeness(g *graph.Graph, opt ClosenessOptions) []float64 {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	sources := opt.Sources
	if sources == nil {
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	out := make([]float64, n)
	// One epoch-stamped workspace per worker: O(reached) work per
	// source with zero steady-state allocation, and the reduction is
	// index-addressed (out[v] slots are disjoint across sources), so no
	// serialization is needed.
	bfs.MultiSourceWorkspace(g, sources, -1, workers, func(_, i int, ws *bfs.Workspace) {
		if total := ws.SumDist(); total > 0 {
			out[sources[i]] = 1 / float64(total)
		}
	})
	return out
}

// TopKVertices returns the indices of the k largest scores in
// descending order (ties toward the smaller index).
func TopKVertices(scores []float64, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return []int32{}
	}
	// Bounded min-heap on (score, -index): the root is the weakest kept
	// vertex — smallest score, ties toward the LARGER index, so that a
	// tied smaller index displaces it. O(n log k) versus the old
	// partial selection sort's O(n·k).
	heap := make([]int32, 0, k)
	worse := func(a, b int32) bool { // a ranks strictly below b
		if scores[a] != scores[b] {
			return scores[a] < scores[b]
		}
		return a > b
	}
	push := func(v int32) {
		heap = append(heap, v)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	popRoot := func() {
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && worse(heap[l], heap[small]) {
				small = l
			}
			if r < last && worse(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for v := int32(0); int(v) < len(scores); v++ {
		if len(heap) < k {
			push(v)
		} else if worse(heap[0], v) {
			popRoot()
			push(v)
		}
	}
	// Extract ascending (weakest first), filling the output backwards.
	out := make([]int32, len(heap))
	for i := len(heap) - 1; i >= 0; i-- {
		out[i] = heap[0]
		popRoot()
	}
	return out
}
