package centrality

import (
	"snap/internal/bfs"
	"snap/internal/graph"
	"snap/internal/par"
)

// DegreeCentrality returns the degree of every vertex as a float64
// score (the simplest local centrality index).
func DegreeCentrality(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = float64(g.Degree(int32(v)))
	}
	return out
}

// ClosenessOptions configures closeness centrality.
type ClosenessOptions struct {
	// Workers bounds parallelism; <= 0 means par.Workers().
	Workers int
	// Sources, when non-nil, computes closeness only for these
	// vertices (the remaining entries are 0).
	Sources []int32
}

// Closeness computes closeness centrality CC(v) = 1 / sum_u d(v, u) on
// an unweighted graph, running one BFS per requested vertex with
// coarse-grained parallelism. Unreachable pairs are skipped (the
// standard convention for disconnected graphs); isolated vertices get
// score 0.
func Closeness(g *graph.Graph, opt ClosenessOptions) []float64 {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := g.NumVertices()
	sources := opt.Sources
	if sources == nil {
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i)
		}
	}
	out := make([]float64, n)
	par.ForGuidedN(len(sources), 1, workers, func(i int) {
		v := sources[i]
		r := bfs.Serial(g, v, nil)
		var total int64
		for _, d := range r.Dist {
			if d > 0 {
				total += int64(d)
			}
		}
		if total > 0 {
			out[v] = 1 / float64(total)
		}
	})
	return out
}

// TopKVertices returns the indices of the k largest scores in
// descending order (ties toward the smaller index).
func TopKVertices(scores []float64, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	// Partial selection sort is fine for the small k used in analyses.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			si, sj := scores[idx[j]], scores[idx[best]]
			if si > sj || (si == sj && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
