// Command snap-gen generates synthetic graphs in the SNAP interchange
// formats.
//
// Usage:
//
//	snap-gen -type rmat -n 100000 -m 400000 -o graph.txt
//	snap-gen -type road -rows 300 -cols 300 -extra 0.2 -format binary -o road.snp
//	snap-gen -type rmat -n 1048576 -m 8388608 -format snp2 -compress -o rmat.snp2
//	snap-gen -type planted -k 8 -csize 500 -pin 0.2 -pout 0.005 -o comm.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"snap/internal/generate"
	"snap/internal/graph"
	"snap/internal/graph/container"
)

func main() {
	var (
		typ      = flag.String("type", "rmat", "family: rmat | er | road | ws | planted | ba")
		n        = flag.Int("n", 10000, "vertex count (rmat, er, ws, ba)")
		m        = flag.Int("m", 40000, "edge count (rmat, er)")
		rows     = flag.Int("rows", 100, "mesh rows (road)")
		cols     = flag.Int("cols", 100, "mesh cols (road)")
		extra    = flag.Float64("extra", 0.1, "shortcut fraction (road)")
		kNear    = flag.Int("knear", 4, "ring neighbors (ws) / attachments (ba)")
		beta     = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		k        = flag.Int("k", 4, "communities (planted)")
		csize    = flag.Int("csize", 100, "community size (planted)")
		pin      = flag.Float64("pin", 0.2, "intra-community edge probability (planted)")
		pout     = flag.Float64("pout", 0.01, "inter-community edge probability (planted)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "-", "output path ('-' = stdout)")
		format   = flag.String("format", "text", "output format: text | binary | snp2")
		compress = flag.Bool("compress", false, "varint delta-compress adjacency (-format snp2)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "rmat":
		g = generate.RMAT(*n, *m, generate.DefaultRMAT(), *seed)
	case "er":
		g = generate.ErdosRenyi(*n, *m, *seed)
	case "road":
		g = generate.RoadMesh(*rows, *cols, *extra, *seed)
	case "ws":
		g = generate.WattsStrogatz(*n, *kNear, *beta, *seed)
	case "planted":
		g, _ = generate.PlantedPartition(*k, *csize, *pin, *pout, *seed)
	case "ba":
		g = generate.PreferentialAttachment(*n, *kNear, *seed)
	default:
		fmt.Fprintf(os.Stderr, "snap-gen: unknown -type %q\n", *typ)
		os.Exit(2)
	}

	var dst *os.File
	if *out == "-" {
		dst = os.Stdout
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snap-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	var err error
	switch *format {
	case "text":
		err = graph.WriteEdgeList(dst, g)
	case "binary":
		err = graph.WriteBinary(dst, g)
	case "snp2":
		err = container.Encode(dst, g, container.Options{Compress: *compress})
	default:
		fmt.Fprintf(os.Stderr, "snap-gen: unknown -format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snap-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "snap-gen: wrote %v\n", g)
}
