// Command snap-community runs the paper's community detection
// algorithms (GN, pBD, pMA, pLA) over a graph and reports modularity,
// community structure, and timing.
//
// Usage:
//
//	snap-community -dataset Karate -algo all
//	snap-community -i g.txt -algo pbd -patience 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"snap/internal/community"
	"snap/internal/datasets"
	"snap/internal/graph"
)

func main() {
	var (
		in       = flag.String("i", "", "input edge list ('-' = stdin)")
		dataset  = flag.String("dataset", "", "built-in instance label (e.g. Karate, E-mail, PPI)")
		scale    = flag.Float64("scale", 1, "scale for built-in instances")
		algo     = flag.String("algo", "all", "algorithm: gn | pbd | pma | pla | spectral | louvain | lpa | all")
		patience = flag.Int("patience", 0, "divisive stop patience (0 = full trajectory)")
		sample   = flag.Float64("sample", 0.05, "pBD betweenness sampling fraction")
		bridges  = flag.Bool("bridges", true, "pBD: use the biconnected-components bridge heuristic")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		show     = flag.Int("show", 5, "print the largest K communities of each result")
		dotOut   = flag.String("dot", "", "write the best clustering as GraphViz DOT to this path")
		dendOut  = flag.String("dendrogram", "", "write the divisive/agglomerative trajectory as JSON to this path")
	)
	flag.Parse()

	g, err := load(*in, *dataset, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snap-community: %v\n", err)
		os.Exit(1)
	}
	if g.Directed() {
		// The paper ignores edge directivity for community detection.
		g = graph.Undirected(g)
	}
	fmt.Printf("graph: %v\n\n", g)

	var best community.Clustering
	var bestDend *community.Dendrogram
	run := func(name string, f func() (community.Clustering, *community.Dendrogram)) {
		start := time.Now()
		c, dend := f()
		dur := time.Since(start)
		fmt.Printf("%-4s  Q=%.4f  communities=%d  time=%.2fs\n", name, c.Q, c.Count, dur.Seconds())
		sizes := c.Sizes()
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		top := sizes
		if len(top) > *show {
			top = top[:*show]
		}
		fmt.Printf("      largest communities: %v\n", top)
		if c.Q > best.Q || best.Assign == nil {
			best = c
			if dend != nil {
				bestDend = dend
			}
		}
	}

	want := func(a string) bool { return *algo == "all" || *algo == a }
	if want("gn") {
		run("GN", func() (community.Clustering, *community.Dendrogram) {
			return community.GirvanNewman(g, community.GNOptions{
				Workers: *workers, Patience: *patience,
			})
		})
	}
	if want("pbd") {
		run("pBD", func() (community.Clustering, *community.Dendrogram) {
			return community.PBD(g, community.PBDOptions{
				Workers:            *workers,
				Seed:               *seed,
				SampleFraction:     *sample,
				UseBridgeHeuristic: *bridges,
				Patience:           *patience,
			})
		})
	}
	if want("pma") {
		run("pMA", func() (community.Clustering, *community.Dendrogram) {
			return community.PMA(g, community.PMAOptions{
				Workers: *workers, StopWhenNegative: true,
			})
		})
	}
	if want("pla") {
		run("pLA", func() (community.Clustering, *community.Dendrogram) {
			return community.PLA(g, community.PLAOptions{Workers: *workers, Seed: *seed}), nil
		})
	}
	if want("spectral") {
		run("spec", func() (community.Clustering, *community.Dendrogram) {
			return community.SpectralCommunities(g, community.SpectralOptions{Seed: *seed, Refine: true}), nil
		})
	}
	if want("louvain") {
		run("louv", func() (community.Clustering, *community.Dendrogram) {
			return community.Louvain(g, community.LouvainOptions{Workers: *workers, Seed: *seed}), nil
		})
	}
	if want("lpa") {
		run("lpa", func() (community.Clustering, *community.Dendrogram) {
			return community.LabelPropagation(g, 0, *seed), nil
		})
	}

	if *dotOut != "" && best.Assign != nil {
		f, err := os.Create(*dotOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snap-community: %v\n", err)
			os.Exit(1)
		}
		if err := graph.WriteDOT(f, g, best.Assign); err != nil {
			fmt.Fprintf(os.Stderr, "snap-community: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote best clustering (Q=%.3f) as DOT to %s\n", best.Q, *dotOut)
	}
	if *dendOut != "" && bestDend != nil {
		data, err := json.Marshal(bestDend)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snap-community: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*dendOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snap-community: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote dendrogram (%d events) to %s\n", bestDend.Len(), *dendOut)
	}
}

func load(in, dataset string, scale float64) (*graph.Graph, error) {
	switch {
	case dataset != "":
		net, err := datasets.ByLabel(dataset)
		if err != nil {
			return nil, err
		}
		return net.Build(scale), nil
	case in == "-":
		return graph.ReadEdgeList(os.Stdin, false)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f, false)
	}
	return nil, fmt.Errorf("need -i or -dataset")
}
