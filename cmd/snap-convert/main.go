// Command snap-convert converts graphs between the supported formats:
// the SNAP text edge list, the compact binary CSR snapshot (SNP1), the
// zero-copy mmap container (SNP2, optionally varint delta-compressed),
// the METIS/Chaco graph format, the DIMACS edge format, and
// (write-only) GraphViz DOT.
//
// Usage:
//
//	snap-convert -i g.txt -from text -o g.metis -to metis
//	snap-convert -i g.metis -from metis -o g.snp -to binary
//	snap-convert -i g.snp -from binary -o g.snp2 -to snp2 -compress
//	snap-convert -i g.snp2 -from snp2 -o g.txt -to text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snap/internal/graph"
	"snap/internal/graph/container"
)

func main() {
	var (
		in       = flag.String("i", "-", "input path ('-' = stdin)")
		out      = flag.String("o", "-", "output path ('-' = stdout)")
		from     = flag.String("from", "text", "input format: text | binary | snp2 | metis | dimacs")
		to       = flag.String("to", "text", "output format: text | binary | snp2 | metis | dimacs | dot")
		directed = flag.Bool("directed", false, "treat text input as directed")
		compress = flag.Bool("compress", false, "varint delta-compress adjacency when -to snp2")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	if *from == "snp2" && *in != "-" {
		// A real file maps zero-copy; the graph stays valid for the
		// process lifetime, so the conversion below reads straight out
		// of the page cache.
		g, err = container.Load(*in, container.LoadOptions{})
	} else {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, oerr := os.Open(*in)
			if oerr != nil {
				fatal(oerr)
			}
			defer f.Close()
			r = f
		}
		switch *from {
		case "text":
			g, err = graph.ReadEdgeList(r, *directed)
		case "binary":
			g, err = graph.ReadBinary(r)
		case "snp2":
			var data []byte
			if data, err = io.ReadAll(r); err == nil {
				g, err = container.Decode(data, container.LoadOptions{})
			}
		case "metis":
			g, err = graph.ReadMETIS(r)
		case "dimacs":
			g, err = graph.ReadDIMACS(r)
		default:
			fatal(fmt.Errorf("unknown -from %q", *from))
		}
	}
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *to {
	case "text":
		err = graph.WriteEdgeList(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	case "snp2":
		err = container.Encode(w, g, container.Options{Compress: *compress})
	case "metis":
		err = graph.WriteMETIS(w, g)
	case "dimacs":
		err = graph.WriteDIMACS(w, g)
	case "dot":
		err = graph.WriteDOT(w, g, nil)
	default:
		fatal(fmt.Errorf("unknown -to %q", *to))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snap-convert: %v (%s -> %s)\n", g, *from, *to)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snap-convert: %v\n", err)
	os.Exit(1)
}
