// Command snap-convert converts graphs between the supported formats:
// the SNAP text edge list, the compact binary CSR snapshot, the
// METIS/Chaco graph format, the DIMACS edge format, and (write-only)
// GraphViz DOT.
//
// Usage:
//
//	snap-convert -i g.txt -from text -o g.metis -to metis
//	snap-convert -i g.metis -from metis -o g.snp -to binary
//	snap-convert -i g.txt -from text -o g.dot -to dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snap/internal/graph"
)

func main() {
	var (
		in       = flag.String("i", "-", "input path ('-' = stdin)")
		out      = flag.String("o", "-", "output path ('-' = stdout)")
		from     = flag.String("from", "text", "input format: text | binary | metis | dimacs")
		to       = flag.String("to", "text", "output format: text | binary | metis | dimacs | dot")
		directed = flag.Bool("directed", false, "treat text input as directed")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var g *graph.Graph
	var err error
	switch *from {
	case "text":
		g, err = graph.ReadEdgeList(r, *directed)
	case "binary":
		g, err = graph.ReadBinary(r)
	case "metis":
		g, err = graph.ReadMETIS(r)
	case "dimacs":
		g, err = graph.ReadDIMACS(r)
	default:
		fatal(fmt.Errorf("unknown -from %q", *from))
	}
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *to {
	case "text":
		err = graph.WriteEdgeList(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	case "metis":
		err = graph.WriteMETIS(w, g)
	case "dimacs":
		err = graph.WriteDIMACS(w, g)
	case "dot":
		err = graph.WriteDOT(w, g, nil)
	default:
		fatal(fmt.Errorf("unknown -to %q", *to))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snap-convert: %v (%s -> %s)\n", g, *from, *to)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "snap-convert: %v\n", err)
	os.Exit(1)
}
