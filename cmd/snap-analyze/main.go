// Command snap-analyze runs SNAP's exploratory network analysis over a
// graph: topological metrics, connectivity structure, and centrality
// indices — the workflow of Section 3 of the paper.
//
// Usage:
//
//	snap-gen -type rmat -n 20000 -m 80000 -o g.txt
//	snap-analyze -i g.txt -metrics -components -centrality approx -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snap/internal/centrality"
	"snap/internal/components"
	"snap/internal/datasets"
	"snap/internal/graph"
	"snap/internal/metrics"
)

func main() {
	var (
		in       = flag.String("i", "", "input edge list ('-' = stdin)")
		dataset  = flag.String("dataset", "", "built-in instance label (e.g. Karate, PPI, RMAT-SF)")
		scale    = flag.Float64("scale", 1, "scale for built-in instances")
		directed = flag.Bool("directed", false, "treat input as directed")
		doMet    = flag.Bool("metrics", false, "report topological metrics")
		doComp   = flag.Bool("components", false, "report connectivity structure")
		cent     = flag.String("centrality", "", "centrality index: degree | closeness | betweenness | approx | pagerank | eigenvector")
		topK     = flag.Int("top", 10, "how many top-ranked vertices to print")
		samples  = flag.Int("samples", 0, "BFS samples for path-length estimation (0 = auto)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		approx   = flag.Bool("approx", false, "route distance metrics and closeness through the sketch tier (HyperANF, sampled closeness)")
		regs     = flag.Int("registers", 0, "HLL registers per vertex under -approx (0 = 64)")
	)
	flag.Parse()

	g, err := load(*in, *dataset, *scale, *directed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snap-analyze: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %v\n", g)

	if !*doMet && !*doComp && *cent == "" {
		*doMet, *doComp = true, true
	}

	if *doMet {
		start := time.Now()
		st := metrics.Degrees(g)
		cc := metrics.GlobalClustering(g, 0)
		tr := metrics.Transitivity(g, 0)
		r := metrics.Assortativity(g)
		avg, diam := metrics.AvgPathLength(g, metrics.PathLengthOptions{
			Samples: *samples, Seed: *seed, Approx: *approx, Registers: *regs,
		})
		bip := metrics.IsBipartite(g)
		fmt.Printf("\n-- metrics (%.2fs) --\n", time.Since(start).Seconds())
		fmt.Printf("degree: min %d, max %d, mean %.2f\n", st.Min, st.Max, st.Mean)
		fmt.Printf("clustering coefficient: %.4f (transitivity %.4f)\n", cc, tr)
		fmt.Printf("assortativity: %+.4f\n", r)
		if *approx {
			eff := metrics.DiameterWithOptions(g, metrics.DiameterOptions{
				Approx: true, Registers: *regs, Seed: *seed,
			})
			fmt.Printf("avg path length: %.3f (sketch; diameter ~ %d, effective %.2f)\n", avg, diam, eff)
		} else {
			fmt.Printf("avg path length: %.3f (diameter >= %d)\n", avg, diam)
		}
		fmt.Printf("bipartite: %v\n", bip)
		fmt.Printf("degeneracy (max k-core): %d\n", metrics.Degeneracy(g))
	}

	if *doComp {
		start := time.Now()
		lab := components.ConnectedParallel(g, nil, 0)
		bc := components.Biconnected(g)
		_, largest := lab.Largest()
		fmt.Printf("\n-- connectivity (%.2fs) --\n", time.Since(start).Seconds())
		fmt.Printf("connected components: %d (largest %d vertices, %.1f%%)\n",
			lab.Count, largest, 100*float64(largest)/float64(g.NumVertices()))
		fmt.Printf("biconnected components: %d\n", bc.CompCount)
		fmt.Printf("articulation points: %d, bridges: %d\n",
			len(bc.ArticulationPoints()), len(bc.Bridges()))
	}

	if *cent != "" {
		start := time.Now()
		var scores []float64
		switch *cent {
		case "degree":
			scores = centrality.DegreeCentrality(g)
		case "closeness":
			if *approx {
				scores = centrality.ApproxCloseness(g, *samples, *seed, 0)
			} else {
				scores = centrality.Closeness(g, centrality.ClosenessOptions{})
			}
		case "betweenness":
			scores = centrality.Betweenness(g, centrality.BetweennessOptions{ComputeVertex: true}).Vertex
		case "approx":
			scores = centrality.ApproxBetweenness(g, centrality.ApproxOptions{
				Seed: *seed, ComputeVertex: true,
			}).Vertex
		case "pagerank":
			if g.Directed() {
				scores = centrality.PageRankDirected(g, centrality.PageRankOptions{})
			} else {
				scores = centrality.PageRank(g, centrality.PageRankOptions{})
			}
		case "eigenvector":
			scores = centrality.EigenvectorCentrality(g, 0, 0)
		default:
			fmt.Fprintf(os.Stderr, "snap-analyze: unknown -centrality %q\n", *cent)
			os.Exit(2)
		}
		fmt.Printf("\n-- %s centrality (%.2fs) --\n", *cent, time.Since(start).Seconds())
		for rank, v := range centrality.TopKVertices(scores, *topK) {
			fmt.Printf("%3d. vertex %8d  score %.4g\n", rank+1, v, scores[v])
		}
	}
}

func load(in, dataset string, scale float64, directed bool) (*graph.Graph, error) {
	switch {
	case dataset != "":
		net, err := datasets.ByLabel(dataset)
		if err != nil {
			return nil, err
		}
		return net.Build(scale), nil
	case in == "-":
		return graph.ReadEdgeList(os.Stdin, directed)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f, directed)
	}
	return nil, fmt.Errorf("need -i or -dataset")
}
