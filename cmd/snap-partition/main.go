// Command snap-partition runs the Table 1 partitioners over a graph
// and reports edge cut, balance, and timing.
//
// Usage:
//
//	snap-gen -type road -rows 200 -cols 200 -o road.txt
//	snap-partition -i road.txt -k 32 -method all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"snap/internal/graph"
	"snap/internal/partition"
)

func main() {
	var (
		in     = flag.String("i", "", "input edge list ('-' = stdin)")
		k      = flag.Int("k", 32, "number of parts")
		method = flag.String("method", "all", "method: kway | recur | rqi | lanczos | all")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "snap-partition: need -i")
		os.Exit(2)
	}

	var g *graph.Graph
	var err error
	if *in == "-" {
		g, err = graph.ReadEdgeList(os.Stdin, false)
	} else {
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			defer f.Close()
			g, err = graph.ReadEdgeList(f, false)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snap-partition: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %v, k=%d\n\n", g, *k)

	methods := []struct {
		name string
		run  func() (partition.Result, error)
	}{
		{"kway", func() (partition.Result, error) {
			return partition.MultilevelKWay(g, *k, partition.MultilevelOptions{Seed: *seed})
		}},
		{"recur", func() (partition.Result, error) {
			return partition.MultilevelRecursive(g, *k, partition.MultilevelOptions{Seed: *seed})
		}},
		{"rqi", func() (partition.Result, error) {
			return partition.SpectralRQI(g, *k, partition.SpectralOptions{Seed: *seed})
		}},
		{"lanczos", func() (partition.Result, error) {
			return partition.SpectralLanczos(g, *k, partition.SpectralOptions{Seed: *seed})
		}},
	}
	ran := false
	for _, m := range methods {
		if *method != "all" && *method != m.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := m.run()
		dur := time.Since(start)
		switch {
		case errors.Is(err, partition.ErrNoConvergence):
			fmt.Printf("%-8s failed to converge (%.2fs)\n", m.name, dur.Seconds())
		case err != nil:
			fmt.Printf("%-8s error: %v\n", m.name, err)
		default:
			fmt.Printf("%-8s cut=%-10d balance=%.3f time=%.2fs\n",
				m.name, res.EdgeCut, res.Balance, dur.Seconds())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "snap-partition: unknown -method %q\n", *method)
		os.Exit(2)
	}
}
