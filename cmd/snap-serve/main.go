// Command snap-serve is the long-lived graph-analytics server: it
// loads graphs — zero-copy mmap'd SNP2 containers, SNP1 binaries, or
// text edge lists — and answers analytics queries over HTTP/JSON under
// concurrent load, with request coalescing, an epoch-keyed result
// cache, admission control, and per-query deadlines (internal/serve).
//
// Usage:
//
//	snap-serve -graph web=web.snp2 -graph road=road.txt
//	snap-serve -stream live=base.snp -addr :9090 -timeout 2s
//	snap-serve -rmat 18   # synthetic demo graph named "rmat"
//
// Endpoints (GET unless noted):
//
//	/healthz, /stats, /graphs, /graphs/{name}
//	/graphs/{name}/bfs?src=S&dst=A,B[&maxdepth=K]   hop distances
//	/graphs/{name}/sssp?src=S&dst=A,B               weighted distances
//	/graphs/{name}/estimate?src=S&dst=T             oracle distance bracket
//	/graphs/{name}/centrality?kind=pagerank&k=10    top-k centrality
//	/graphs/{name}/community?v=A,B                  community assignment
//	/graphs/{name}/components?v=A,B                 component labels
//	/graphs/{name}/subgraph?v=A,B,C                 induced-subgraph metrics
//	POST /graphs/{name}/edges {"add":[[u,v],...]}   stage stream edges
//	POST /graphs/{name}/commit                      publish a new epoch
//
// A -graph handle is immutable (mutations answer 405); a -stream
// handle accepts staged edges and commits, and queries always pin the
// newest committed epoch.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"snap"
	"snap/internal/graph"
	"snap/internal/graph/container"
	"snap/internal/ingest"
	"snap/internal/serve"
)

// namePathList collects repeatable name=path flags.
type namePathList []string

func (l *namePathList) String() string     { return strings.Join(*l, ",") }
func (l *namePathList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var graphs, streams namePathList
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		rmat     = flag.Int("rmat", 0, "also serve a synthetic RMAT graph named \"rmat\" at this scale (n = 2^scale, m = 8n)")
		directed = flag.Bool("directed", false, "treat text edge-list inputs as directed")
		window   = flag.Duration("window", 0, "coalescing window (0 = default, negative = disabled)")
		cacheMB  = flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = default, negative = disabled)")
		inflight = flag.Int("inflight", 0, "max in-flight heavy queries (0 = default, negative = unlimited)")
		timeout  = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		workers  = flag.Int("workers", 0, "worker cap per kernel invocation (0 = all cores)")
	)
	flag.Var(&graphs, "graph", "serve an immutable graph, name=path (repeatable; .snp2 maps zero-copy)")
	flag.Var(&streams, "stream", "serve a mutable ingest stream seeded from path, name=path (repeatable)")
	flag.Parse()

	s := serve.New(serve.Config{
		CoalesceWindow: *window,
		CacheBytes:     *cacheMB << 20,
		MaxInFlight:    *inflight,
		QueryTimeout:   *timeout,
		Workers:        *workers,
	})

	registered := 0
	for _, spec := range graphs {
		name, g := loadSpec(spec, *directed)
		if err := s.RegisterStatic(name, g); err != nil {
			fatal(err)
		}
		logGraph(name, g, "static")
		registered++
	}
	for _, spec := range streams {
		name, g := loadSpec(spec, *directed)
		if err := s.RegisterStream(name, ingest.New(g, ingest.Options{})); err != nil {
			fatal(err)
		}
		logGraph(name, g, "stream")
		registered++
	}
	if *rmat > 0 {
		n := 1 << *rmat
		g := snap.RMAT(n, 8*n, snap.DefaultRMAT(), 1)
		if err := s.RegisterStatic("rmat", g); err != nil {
			fatal(err)
		}
		logGraph("rmat", g, "static")
		registered++
	}
	if registered == 0 {
		fmt.Fprintln(os.Stderr, "snap-serve: nothing to serve; pass -graph, -stream, or -rmat")
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "snap-serve: listening on %s\n", *addr)
	srv := &http.Server{Addr: *addr, Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fatal(srv.ListenAndServe())
}

// loadSpec parses "name=path" and loads the graph by extension: .snp2
// maps zero-copy, .snp/.bin read the SNP1 binary, anything else parses
// as a text edge list.
func loadSpec(spec string, directed bool) (string, *graph.Graph) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		fatal(fmt.Errorf("want name=path, got %q", spec))
	}
	var g *graph.Graph
	var err error
	switch {
	case strings.HasSuffix(path, ".snp2"):
		g, err = container.Load(path, container.LoadOptions{})
	case strings.HasSuffix(path, ".snp"), strings.HasSuffix(path, ".bin"):
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = graph.ReadBinary(f)
			f.Close()
		}
	default:
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = graph.ReadEdgeList(f, directed)
			f.Close()
		}
	}
	if err != nil {
		fatal(fmt.Errorf("load %s: %w", path, err))
	}
	return name, g
}

func logGraph(name string, g *graph.Graph, kind string) {
	fmt.Fprintf(os.Stderr, "snap-serve: %s %q: %v\n", kind, name, g)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snap-serve:", err)
	os.Exit(1)
}
