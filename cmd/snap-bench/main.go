// Command snap-bench regenerates the tables and figures of the paper's
// evaluation (Section 5). By default every experiment runs at a
// reduced scale suitable for a single machine; pass -scale 1 for
// paper-sized instances.
//
// Usage:
//
//	snap-bench -all
//	snap-bench -table 1 -scale 0.25
//	snap-bench -figure 2 -workers 1,2,4,8
//	snap-bench -table 2 -gn-maxn 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"snap/internal/bench"
)

func main() {
	var (
		table   = flag.String("table", "", "table to regenerate: 1, 2, or 3")
		figure  = flag.String("figure", "", "figure to regenerate: 2, 3a, or 3b")
		ablate  = flag.Bool("ablations", false, "run the design-choice ablations")
		loads   = flag.Bool("loads", false, "measure the graph ingest paths (text vs SNP1 vs SNP2)")
		ingest  = flag.Bool("ingest", false, "measure snapshot-epoch streaming commits and incremental kernels")
		sk      = flag.Bool("sketch", false, "measure the approximate-analytics tier (HyperANF, sampled closeness, landmark oracle) against the exact kernels")
		part    = flag.Bool("partition", false, "measure the parallel multilevel partitioner and the partition-blocked shard-local kernel layout")
		srv     = flag.Bool("serve", false, "load-test the serving tier: sustained qps and p50/p99 with and without request coalescing and the result cache")
		all     = flag.Bool("all", false, "run every experiment in paper order")
		scale   = flag.Float64("scale", 0.1, "instance scale relative to the paper (1 = full size)")
		k       = flag.Int("k", 32, "part count for Table 1")
		workers = flag.String("workers", "1,2,4,8,16,32", "comma-separated thread sweep for the figures")
		gnMaxN  = flag.Int("gn-maxn", 1200, "largest n for a full Girvan-Newman run in Table 2")
		seed    = flag.Int64("seed", 0, "generator seed (0 = default)")
		fast    = flag.Bool("fast", false, "shrink everything for a quick smoke run")
	)
	flag.Parse()

	cfg := bench.Config{
		Out:    os.Stdout,
		Scale:  *scale,
		K:      *k,
		GNMaxN: *gnMaxN,
		Seed:   *seed,
		Fast:   *fast,
	}
	for _, f := range strings.Split(*workers, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "snap-bench: bad -workers entry %q\n", f)
			os.Exit(2)
		}
		cfg.Workers = append(cfg.Workers, v)
	}

	ran := false
	if *all {
		bench.All(cfg)
		return
	}
	switch *table {
	case "":
	case "1":
		bench.Table1(cfg)
		ran = true
	case "2":
		bench.Table2(cfg)
		ran = true
	case "3":
		bench.Table3(cfg)
		ran = true
	default:
		fmt.Fprintf(os.Stderr, "snap-bench: unknown table %q\n", *table)
		os.Exit(2)
	}
	switch *figure {
	case "":
	case "2":
		bench.Figure2(cfg)
		ran = true
	case "3a":
		bench.Figure3a(cfg)
		ran = true
	case "3b":
		bench.Figure3b(cfg)
		ran = true
	default:
		fmt.Fprintf(os.Stderr, "snap-bench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
	if *ablate {
		bench.Ablations(cfg)
		ran = true
	}
	if *loads {
		bench.Loads(cfg)
		ran = true
	}
	if *ingest {
		bench.Ingest(cfg)
		ran = true
	}
	if *sk {
		bench.Sketch(cfg)
		ran = true
	}
	if *part {
		bench.Partition(cfg)
		ran = true
	}
	if *srv {
		bench.Serve(cfg)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
