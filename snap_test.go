package snap

import (
	"bytes"
	"math"
	"testing"
)

// The facade tests exercise the public API end to end the way a
// downstream user would.

func TestFacadeBuildAndKernels(t *testing.T) {
	g, err := Build(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := BFS(g, 0)
	if r.Dist[5] != 3 {
		t.Fatalf("BFS dist[5] = %d, want 3", r.Dist[5])
	}
	if got := BFSSerial(g, 0); got.Dist[5] != 3 {
		t.Fatalf("serial BFS differs: %d", got.Dist[5])
	}
	cc := ConnectedComponents(g)
	if cc.Count != 1 {
		t.Fatalf("components = %d", cc.Count)
	}
	bi := Biconnected(g)
	if len(bi.Bridges()) != 1 {
		t.Fatalf("bridges = %v", bi.Bridges())
	}
	mst := MST(g)
	if len(mst.EdgeIDs) != 5 {
		t.Fatalf("MST edges = %d, want n-1 = 5", len(mst.EdgeIDs))
	}
	sp := ShortestPaths(g, 0)
	dj := Dijkstra(g, 0)
	for v := range sp.Dist {
		if sp.Dist[v] != dj.Dist[v] {
			t.Fatalf("delta-stepping differs from dijkstra at %d", v)
		}
	}
}

func TestFacadeCentralityAndMetrics(t *testing.T) {
	g := RMAT(512, 2048, DefaultRMAT(), 1)
	bc := Betweenness(g, BetweennessOptions{ComputeVertex: true})
	if len(bc.Vertex) != 512 {
		t.Fatal("vertex scores missing")
	}
	ab := ApproxBetweenness(g, ApproxOptions{Seed: 1})
	if ab.Sources <= 0 {
		t.Fatal("approx used no sources")
	}
	if len(DegreeCentrality(g)) != 512 {
		t.Fatal("degree centrality size")
	}
	if len(Closeness(g)) != 512 {
		t.Fatal("closeness size")
	}
	top := TopKVertices(bc.Vertex, 5)
	if len(top) != 5 {
		t.Fatal("top-k size")
	}
	if c := ClusteringCoefficient(g); c < 0 || c > 1 {
		t.Fatalf("clustering coefficient %g out of range", c)
	}
	if a := Assortativity(g); a < -1 || a > 1 {
		t.Fatalf("assortativity %g out of range", a)
	}
	if avg, _ := AvgPathLength(g); avg <= 0 {
		t.Fatalf("avg path length %g", avg)
	}
	st := Degrees(g)
	if st.Max <= 0 {
		t.Fatal("degree stats empty")
	}
	_ = LocalClustering(g)
	_ = RichClub(g)
	_ = AvgNeighborDegree(g)
}

func TestFacadeCommunity(t *testing.T) {
	g, truth := PlantedPartition(4, 25, 0.5, 0.01, 3)
	truthQ := Modularity(g, truth)
	gn, _ := GirvanNewman(g, GNOptions{MaxRemovals: 200})
	pbd, _ := PBD(g, PBDOptions{Seed: 1, Patience: 60})
	pma, dend := PMA(g, PMAOptions{StopWhenNegative: true})
	pla := PLA(g, PLAOptions{Seed: 1})
	if dend.Len() == 0 {
		t.Fatal("pMA dendrogram empty")
	}
	for name, q := range map[string]float64{
		"GN": gn.Q, "PBD": pbd.Q, "PMA": pma.Q, "PLA": pla.Q,
	} {
		if q < truthQ*0.85 {
			t.Fatalf("%s Q = %.3f below 85%% of truth %.3f", name, q, truthQ)
		}
	}
	ref := RefineClustering(g, pma, 8, 1)
	if ref.Q < pma.Q-1e-12 {
		t.Fatal("refine decreased Q")
	}
}

func TestFacadePartitioning(t *testing.T) {
	mesh := RoadMesh(30, 30, 0, 2)
	sw := RMAT(900, mesh.NumEdges(), DefaultRMAT(), 2)
	km, err := MultilevelKWay(mesh, 4, MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := MultilevelKWay(sw, 4, MultilevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ks.EdgeCut <= km.EdgeCut {
		t.Fatalf("small-world cut %d should exceed mesh cut %d", ks.EdgeCut, km.EdgeCut)
	}
	if km.EdgeCut != EdgeCut(mesh, km.Part) {
		t.Fatal("EdgeCut mismatch")
	}
	rec, err := MultilevelRecursive(mesh, 4, MultilevelOptions{Seed: 1})
	if err != nil || rec.Balance > 1.2 {
		t.Fatalf("recursive: %v balance %.2f", err, rec.Balance)
	}
	if _, err := SpectralRQI(mesh, 2, SpectralOptions{Seed: 1}); err != nil {
		t.Fatalf("spectral rqi on mesh: %v", err)
	}
	if _, err := SpectralLanczos(mesh, 2, SpectralOptions{Seed: 1}); err != nil {
		t.Fatalf("spectral lanczos on mesh: %v", err)
	}
}

func TestFacadeIO(t *testing.T) {
	g := WattsStrogatz(64, 4, 0.1, 1)
	var txt bytes.Buffer
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&txt, false)
	if err != nil || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("text round trip: %v", err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadBinary(&bin)
	if err != nil || g3.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip: %v", err)
	}
}

func TestFacadeDynamic(t *testing.T) {
	d := NewDynamic(10, false)
	for v := int32(1); v < 10; v++ {
		if _, err := d.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g, err := FromDynamic(d)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 || g.Degree(0) != 9 {
		t.Fatalf("dynamic freeze wrong: %v", g)
	}
	u := Undirected(g)
	if u != g {
		t.Fatal("Undirected of undirected should be identity")
	}
}

func TestFacadeModularityMatchesManual(t *testing.T) {
	g, _ := Build(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}, BuildOptions{})
	q := Modularity(g, []int32{0, 0, 0, 1, 1, 1})
	if math.Abs(q-(6.0/7-0.5)) > 1e-12 {
		t.Fatalf("Q = %g", q)
	}
}

func TestFacadeSpectralCommunities(t *testing.T) {
	g, truth := PlantedPartition(3, 30, 0.5, 0.01, 9)
	c := SpectralCommunities(g, CommunitySpectralOptions{Seed: 1, Refine: true})
	if c.Q < Modularity(g, truth)*0.9 {
		t.Fatalf("spectral communities Q = %.3f too low", c.Q)
	}
}

func TestFacadeIncrementalConnectivity(t *testing.T) {
	inc := NewIncrementalConnectivity(4)
	inc.AddEdge(0, 1)
	inc.AddEdge(2, 3)
	if inc.Components() != 2 || inc.Connected(0, 2) {
		t.Fatal("incremental connectivity wrong")
	}
	inc.AddEdge(1, 2)
	if !inc.Connected(0, 3) {
		t.Fatal("merge not reflected")
	}
}

func TestFacadeNewKernels(t *testing.T) {
	g := RMAT(400, 1600, DefaultRMAT(), 6)
	pr := PageRank(g, PageRankOptions{})
	var s float64
	for _, v := range pr {
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("PageRank sum %g", s)
	}
	if len(EigenvectorCentrality(g)) != 400 {
		t.Fatal("eigenvector size")
	}
	if ok, d := STConnectivity(g, 0, 0); !ok || d != 0 {
		t.Fatal("stcon self")
	}
	core := KCore(g)
	if len(core) != 400 || Degeneracy(g) <= 0 {
		t.Fatal("kcore")
	}
	r := BFSDirectionOptimizing(g, 0)
	want := BFSSerial(g, 0)
	for v := range want.Dist {
		if r.Dist[v] != want.Dist[v] {
			t.Fatal("direction-optimizing BFS differs")
		}
	}
	perm := RCMOrder(g)
	rg, _ := Permute(g, perm)
	if Bandwidth(rg) <= 0 || rg.NumEdges() != g.NumEdges() {
		t.Fatal("rcm/permute")
	}
	scc := StronglyConnectedComponents(g)
	if scc.Count < 1 {
		t.Fatal("scc")
	}
	_ = Condensation(g, scc)
}

func TestFacadeApproxAnalytics(t *testing.T) {
	g := RMAT(600, 2400, DefaultRMAT(), 8)
	anf := ApproxNeighborhood(g, ANFOptions{Seed: 1})
	if len(anf.NF) == 0 || anf.AvgPathLength <= 0 || len(anf.Reach) != 600 {
		t.Fatalf("ANF result: %+v", anf)
	}
	if eff := EffectiveDiameter(g); eff <= 0 {
		t.Fatalf("effective diameter %g", eff)
	}
	avg, diam := ApproxAvgPathLength(g)
	if avg <= 0 || diam <= 0 {
		t.Fatalf("approx avg path (%g, %d)", avg, diam)
	}
	sc := SampledCloseness(g, SampledClosenessOptions{Samples: 32, Seed: 1})
	if len(sc.Scores) != 600 || len(sc.Pivots) != 32 || sc.Epsilon <= 0 {
		t.Fatalf("sampled closeness: %d scores, %d pivots", len(sc.Scores), len(sc.Pivots))
	}
	oracle, err := NewDistanceOracle(g, DistanceOracleOptions{Landmarks: 8})
	if err != nil {
		t.Fatal(err)
	}
	exact := BFSSerial(g, 3)
	for v := int32(0); v < 600; v++ {
		d := exact.Dist[v]
		lo, hi := oracle.Estimate(3, v)
		if d < 0 {
			if hi >= 0 {
				t.Fatalf("disconnected pair got bracket [%d,%d]", lo, hi)
			}
			continue
		}
		if hi < 0 {
			continue
		}
		if lo > d || d > hi {
			t.Fatalf("oracle bracket [%d,%d] misses exact %d for (3,%d)", lo, hi, d, v)
		}
	}
}

func TestFacadeLouvainAndQuality(t *testing.T) {
	g, truth := PlantedPartition(4, 30, 0.5, 0.01, 4)
	lv := Louvain(g, LouvainOptions{Seed: 1})
	if lv.Q < Modularity(g, truth)*0.9 {
		t.Fatalf("louvain Q %.3f too low", lv.Q)
	}
	if NMI(truth, lv.Assign) < 0.85 {
		t.Fatal("louvain NMI too low")
	}
	if Coverage(g, lv.Assign) <= 0.5 {
		t.Fatal("coverage too low")
	}
	cond := Conductance(g, lv)
	if len(cond) != lv.Count {
		t.Fatal("conductance size")
	}
	cg := CommunityGraph(g, lv)
	if cg.NumVertices() != lv.Count {
		t.Fatal("community graph size")
	}
}

func TestFacadeFormats(t *testing.T) {
	g := WattsStrogatz(40, 4, 0.2, 2)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("metis: %v", err)
	}
	buf.Reset()
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	sub, _, err := InducedSubgraph(g, []int32{0, 1, 2, 3})
	if err != nil || sub.NumVertices() != 4 {
		t.Fatalf("induced: %v", err)
	}
	at := NewAttributes(g)
	if err := at.SetVertexString("label", 0, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLatestExtensions(t *testing.T) {
	g, truth := PlantedPartition(3, 40, 0.5, 0.005, 12)
	lpa := LabelPropagation(g, 2)
	if NMI(truth, lpa.Assign) < 0.8 {
		t.Fatalf("LPA NMI too low")
	}
	ac := ApproxCloseness(g, 24, 3)
	if len(ac) != g.NumVertices() {
		t.Fatal("approx closeness size")
	}
	rw := RewireDegreePreserving(g, 5000, 4)
	if rw.NumEdges() != g.NumEdges() {
		t.Fatal("rewire changed m")
	}
	if d := Diameter(g); d < 2 {
		t.Fatalf("diameter = %d", d)
	}
	ba := PreferentialAttachment(3000, 3, 5)
	alpha, cnt := PowerLawAlpha(ba, 3)
	if cnt == 0 || alpha < 1.5 || alpha > 5 {
		t.Fatalf("alpha = %g (%d samples)", alpha, cnt)
	}
}

func TestFacadeContainer(t *testing.T) {
	g := WattsStrogatz(128, 4, 0.1, 7)
	dir := t.TempDir()
	for _, compress := range []bool{false, true} {
		p := dir + "/g.snp2"
		if err := WriteContainer(p, g, ContainerOptions{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		m, err := MapBinary(p)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumVertices() != g.NumVertices() || m.NumArcs() != g.NumArcs() {
			t.Fatalf("mapped shape %v, want %v", m, g)
		}
		hb, mb := BFS(g, 0), BFS(m, 0)
		for v := range hb.Dist {
			if hb.Dist[v] != mb.Dist[v] {
				t.Fatalf("mapped BFS differs at %d (compress=%v)", v, compress)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeContainer(&buf, g, ContainerOptions{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		d, err := DecodeContainer(buf.Bytes(), MapLoadOptions{Validate: true})
		if err != nil || d.NumArcs() != g.NumArcs() {
			t.Fatalf("decode (compress=%v): %v", compress, err)
		}
		v, err := MapBinaryOptions(p, MapLoadOptions{ForceCopy: true, Validate: true})
		if err != nil || v.NumArcs() != g.NumArcs() {
			t.Fatalf("forced-copy load (compress=%v): %v", compress, err)
		}
	}
}

func TestFacadeStream(t *testing.T) {
	g := WattsStrogatz(200, 4, 0.1, 3)
	s := NewStream(g, StreamOptions{})
	defer s.Close()
	if err := s.Add(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 1 || stats.Deleted != 1 {
		t.Fatalf("stats = %+v, want 1 add / 1 delete", stats)
	}
	e := s.Pin()
	defer e.Close()
	if !e.Graph().HasEdge(0, 100) || e.Graph().HasEdge(0, 1) {
		t.Fatal("epoch graph missing the committed delta")
	}

	// Standalone delta merge agrees with the stream commit.
	merged, err := MergeDelta(g, []Edge{{U: 0, V: 100}}, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumEdges() != e.Graph().NumEdges() {
		t.Fatalf("MergeDelta edges %d, epoch edges %d", merged.NumEdges(), e.Graph().NumEdges())
	}

	// Incremental PageRank entry points agree with the cold path.
	opt := PageRankOptions{}
	full := PageRank(e.Graph(), opt)
	warm := PageRankFrom(e.Graph(), full, opt)
	inc := PageRankDelta(e.Graph(), full, []int32{0, 1, 100}, opt)
	for v := range full {
		if d := full[v] - warm[v]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("PageRankFrom diverges at %d", v)
		}
		if d := full[v] - inc[v]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("PageRankDelta diverges at %d", v)
		}
	}

	es, err := NewEmptyStream(10, false, false, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	if err := es.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := es.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := es.Components().Count; got != 9 {
		t.Fatalf("components after one edge = %d, want 9", got)
	}
}
